"""Degenerate-fusion equivalence oracle.

A :class:`FusedMapping` with no sub-nests and no fusion level must
reproduce ``evaluate_network``'s per-layer results *bit-identically* —
the fused path with nothing fused is the unfused path. Checked across
every bundled design family so the refactored evaluation core provably
did not change the single-einsum semantics.
"""

from dataclasses import replace

import pytest

from repro.api import Session
from repro.designs import codesign, dstc, eyeriss, eyeriss_v2, scnn, stc, toy
from repro.designs.common import generic_einsum_mapping
from repro.workload.nets import NetLayer
from tests.workload.test_graph import chain_graph

DENSITIES = {"A": 0.5, "B": 0.6, "H": 0.7, "C": 0.4}


def bundled_designs():
    """The eight bundled design families (same set the sharded-search
    identity bench scans), re-pointed at the shape-agnostic mapping
    policy: the factories' hard-coded kernels don't schedule chain
    einsums, and the oracle only needs *identical* mappings on both
    paths, not clever ones."""
    designs = [
        ("toy-bitmask", toy.bitmask_design()),
        ("toy-coordinate-list", toy.coordinate_list_design()),
        ("eyeriss", eyeriss.eyeriss_design()),
        ("eyeriss-v2-pe", eyeriss_v2.eyeriss_v2_pe_design()),
        ("scnn", scnn.scnn_design()),
        ("dstc", dstc.dstc_design()),
        ("stc", stc.stc_design()),
        ("codesign", codesign.build_design(*codesign.ALL_COMBINATIONS[0])),
    ]
    return [
        (
            name,
            replace(
                design,
                mapping=None,
                constraints=None,
                mapping_factory=generic_einsum_mapping,
            ),
        )
        for name, design in designs
    ]


def densities_for(layer):
    names = {ref.name for ref in layer.spec.tensors}
    return {t: d for t, d in DENSITIES.items() if t in names}


@pytest.mark.parametrize(
    "name,design", bundled_designs(), ids=[n for n, _ in bundled_designs()]
)
def test_degenerate_fused_matches_network(name, design):
    graph = chain_graph()
    layers = [NetLayer(spec.name, spec) for spec in graph.einsums]
    with Session(check_capacity=False) as session:
        fused = session.evaluate_fused(design, graph, dict(DENSITIES))
        network = session.evaluate_network(design, layers, densities_for)
    assert fused.fuse_at is None
    assert [e.einsum_name for e in fused.einsums] == [
        layer.layer_name for layer in network.layers
    ]
    for fused_entry, layer in zip(fused.einsums, network.layers):
        assert (
            fused_entry.result.to_dict() == layer.result.to_dict()
        ), f"{name}: einsum {fused_entry.einsum_name} diverged"


def test_degenerate_shared_records_report_backing_traffic():
    """Even unfused, the result attributes the intermediate's traffic —
    at the outermost level it is the full producer+consumer round trip."""
    name, design = bundled_designs()[0]
    graph = chain_graph()
    with Session(check_capacity=False) as session:
        result = session.evaluate_fused(design, graph, dict(DENSITIES))
    record = result.shared_tensor("H")
    assert record["producer"] == "fc1"
    assert record["consumers"] == ["fc2"]
    assert result.intermediate_backing_words > 0
