"""Tests for the top-level evaluation engine."""

import pytest

from repro import Design, Evaluator, Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.errors import SpecError, ValidationError
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.mapping.mapspace import MapspaceConstraints
from repro.sparse.saf import SAFSpec, skip_compute
from repro.workload.nets import alexnet


@pytest.fixture
def arch():
    return Architecture(
        "a",
        [
            StorageLevel("DRAM", None, component="dram"),
            StorageLevel("Buffer", 4096, component="sram"),
        ],
        ComputeLevel("MAC", instances=4),
    )


@pytest.fixture
def mapping():
    return Mapping(
        [
            LevelMapping("DRAM", [Loop("m", 2)]),
            LevelMapping(
                "Buffer",
                [Loop("m", 4), Loop("k", 8), Loop("n", 2)],
                [Loop("n", 4)],
            ),
        ]
    )


@pytest.fixture
def workload():
    return Workload.uniform(matmul(8, 8, 8), {"A": 0.5})


class TestEvaluate:
    def test_fixed_mapping(self, arch, mapping, workload):
        design = Design("d", arch, SAFSpec(), mapping=mapping)
        result = Evaluator().evaluate(design, workload)
        assert result.cycles > 0
        assert result.energy_pj > 0
        assert result.edp == result.cycles * result.energy_pj

    def test_mapping_factory(self, arch, mapping, workload):
        calls = []

        def factory(wl, a):
            calls.append(wl.name)
            return mapping

        design = Design("d", arch, SAFSpec(), mapping_factory=factory)
        Evaluator().evaluate(design, workload)
        assert calls == [workload.name]

    def test_explicit_mapping_overrides(self, arch, mapping, workload):
        design = Design("d", arch, SAFSpec(), mapping=mapping)
        other = Mapping(
            [
                LevelMapping("DRAM", []),
                LevelMapping(
                    "Buffer", [Loop("m", 8), Loop("k", 8), Loop("n", 8)]
                ),
            ]
        )
        result = Evaluator().evaluate(design, workload, mapping=other)
        assert result.dense.mapping is other

    def test_no_mapping_source_raises(self, arch, workload):
        design = Design("d", arch)
        with pytest.raises(SpecError):
            Evaluator().evaluate(design, workload)

    def test_capacity_check_enforced(self, workload, mapping):
        tiny = Architecture(
            "tiny",
            [
                StorageLevel("DRAM", None, component="dram"),
                StorageLevel("Buffer", 16, component="sram"),
            ],
            ComputeLevel("MAC", instances=4),
        )
        design = Design("d", tiny, SAFSpec(), mapping=mapping)
        with pytest.raises(ValidationError):
            Evaluator().evaluate(design, workload)
        # And can be disabled.
        result = Evaluator(check_capacity=False).evaluate(design, workload)
        assert not result.usage["Buffer"].fits


class TestSearch:
    def test_constraints_search_finds_valid(self, arch, workload):
        design = Design(
            "d",
            arch,
            SAFSpec(),
            constraints=MapspaceConstraints(),
        )
        result = Evaluator(search_budget=24).evaluate(design, workload)
        assert result.cycles > 0

    def test_search_optimizes_objective(self, arch, workload):
        design = Design("d", arch, constraints=MapspaceConstraints())
        ev = Evaluator(search_budget=24)
        best_edp = ev.search_mappings(design, workload)
        best_cycles = ev.search_mappings(
            design, workload, objective=lambda r: r.cycles
        )
        assert best_cycles.cycles <= best_edp.cycles

    def test_explicit_candidates(self, arch, workload, mapping):
        design = Design("d", arch)
        result = Evaluator().search_mappings(
            design, workload, candidates=[mapping]
        )
        assert result is not None


class TestNetworkEvaluation:
    def test_per_layer_results(self, arch, mapping):
        from repro.mapping.mapping import single_level_mapping

        def factory(wl, a):
            return single_level_mapping(a, wl.einsum)

        design = Design("d", arch, SAFSpec(), mapping_factory=factory)
        layers = alexnet()[:2]
        results = Evaluator(check_capacity=False).evaluate_network(
            design, layers, lambda layer: {"I": 0.5}
        )
        assert len(results) == 2
        assert results[0][0].name == "conv1"
        assert all(r.cycles > 0 for _l, r in results)


class TestResultReporting:
    def test_summary_contains_key_facts(self, arch, mapping, workload):
        design = Design(
            "d",
            arch,
            SAFSpec(compute_safs=[skip_compute(["A"])]),
            mapping=mapping,
        )
        result = Evaluator().evaluate(design, workload)
        text = result.summary()
        assert "cycles" in text
        assert "energy" in text
        assert "skipped" in text

    def test_level_accessors(self, arch, mapping, workload):
        design = Design("d", arch, SAFSpec(), mapping=mapping)
        result = Evaluator().evaluate(design, workload)
        assert result.level_energy("DRAM") > 0
        assert result.level_cycles("MAC") > 0
        assert result.compression_rate("Buffer", "A") == 1.0

    def test_energy_per_compute(self, arch, mapping, workload):
        design = Design("d", arch, SAFSpec(), mapping=mapping)
        result = Evaluator().evaluate(design, workload)
        assert result.energy_per_compute == pytest.approx(
            result.energy_pj / result.actual_computes
        )
