"""Tests for the top-level evaluation engine."""

import pytest

from repro import Design, Evaluator, Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.errors import SpecError, ValidationError
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.mapping.mapspace import MapspaceConstraints
from repro.sparse.saf import SAFSpec, skip_compute
from repro.workload.nets import alexnet


@pytest.fixture
def arch():
    return Architecture(
        "a",
        [
            StorageLevel("DRAM", None, component="dram"),
            StorageLevel("Buffer", 4096, component="sram"),
        ],
        ComputeLevel("MAC", instances=4),
    )


@pytest.fixture
def mapping():
    return Mapping(
        [
            LevelMapping("DRAM", [Loop("m", 2)]),
            LevelMapping(
                "Buffer",
                [Loop("m", 4), Loop("k", 8), Loop("n", 2)],
                [Loop("n", 4)],
            ),
        ]
    )


@pytest.fixture
def workload():
    return Workload.uniform(matmul(8, 8, 8), {"A": 0.5})


class TestEvaluate:
    def test_fixed_mapping(self, arch, mapping, workload):
        design = Design("d", arch, SAFSpec(), mapping=mapping)
        result = Evaluator().evaluate(design, workload)
        assert result.cycles > 0
        assert result.energy_pj > 0
        assert result.edp == result.cycles * result.energy_pj

    def test_mapping_factory(self, arch, mapping, workload):
        calls = []

        def factory(wl, a):
            calls.append(wl.name)
            return mapping

        design = Design("d", arch, SAFSpec(), mapping_factory=factory)
        Evaluator().evaluate(design, workload)
        assert calls == [workload.name]

    def test_explicit_mapping_overrides(self, arch, mapping, workload):
        design = Design("d", arch, SAFSpec(), mapping=mapping)
        other = Mapping(
            [
                LevelMapping("DRAM", []),
                LevelMapping(
                    "Buffer", [Loop("m", 8), Loop("k", 8), Loop("n", 8)]
                ),
            ]
        )
        result = Evaluator().evaluate(design, workload, mapping=other)
        assert result.dense.mapping is other

    def test_no_mapping_source_raises(self, arch, workload):
        design = Design("d", arch)
        with pytest.raises(SpecError):
            Evaluator().evaluate(design, workload)

    def test_capacity_check_enforced(self, workload, mapping):
        tiny = Architecture(
            "tiny",
            [
                StorageLevel("DRAM", None, component="dram"),
                StorageLevel("Buffer", 16, component="sram"),
            ],
            ComputeLevel("MAC", instances=4),
        )
        design = Design("d", tiny, SAFSpec(), mapping=mapping)
        with pytest.raises(ValidationError):
            Evaluator().evaluate(design, workload)
        # And can be disabled.
        result = Evaluator(check_capacity=False).evaluate(design, workload)
        assert not result.usage["Buffer"].fits


class TestSearch:
    def test_constraints_search_finds_valid(self, arch, workload):
        design = Design(
            "d",
            arch,
            SAFSpec(),
            constraints=MapspaceConstraints(),
        )
        result = Evaluator(search_budget=24).evaluate(design, workload)
        assert result.cycles > 0

    def test_search_optimizes_objective(self, arch, workload):
        design = Design("d", arch, constraints=MapspaceConstraints())
        ev = Evaluator(search_budget=24)
        best_edp = ev.search_mappings(design, workload)
        best_cycles = ev.search_mappings(
            design, workload, objective=lambda r: r.cycles
        )
        assert best_cycles.cycles <= best_edp.cycles

    def test_explicit_candidates(self, arch, workload, mapping):
        design = Design("d", arch)
        result = Evaluator().search_mappings(
            design, workload, candidates=[mapping]
        )
        assert result is not None


class TestNetworkEvaluation:
    def test_per_layer_results(self, arch, mapping):
        from repro.mapping.mapping import single_level_mapping

        def factory(wl, a):
            return single_level_mapping(a, wl.einsum)

        design = Design("d", arch, SAFSpec(), mapping_factory=factory)
        layers = alexnet()[:2]
        results = Evaluator(check_capacity=False).evaluate_network(
            design, layers, lambda layer: {"I": 0.5}
        )
        assert len(results) == 2
        assert results[0][0].name == "conv1"
        assert all(r.cycles > 0 for _l, r in results)


def _counting_factory_calls():
    """A picklable-unfriendly (closure) factory is fine here: the
    dedupe tests run serially."""
    calls = []

    def factory(wl, a):
        from repro.mapping.mapping import single_level_mapping

        calls.append(wl.name)
        return single_level_mapping(a, wl.einsum)

    return factory, calls


class TestNetworkDedupe:
    def _design(self, arch, factory=None):
        from repro.mapping.mapping import single_level_mapping

        if factory is None:
            factory = lambda wl, a: single_level_mapping(a, wl.einsum)  # noqa: E731
        return Design("d", arch, SAFSpec(), mapping_factory=factory)

    def _repeated_layers(self):
        # BERT-style repetition: identical shapes appear as separate
        # NetLayer entries (and resnet50 collapses them via repeat).
        from repro.workload.nets import NetLayer

        spec = matmul(64, 64, 64, name="block")
        other = matmul(64, 64, 32, name="tail")
        return [
            NetLayer("block_1", spec),
            NetLayer("block_2", spec),
            NetLayer("tail", other),
            NetLayer("block_3", spec, repeat=2),
        ]

    def test_identical_layers_evaluated_once(self, arch):
        factory, calls = _counting_factory_calls()
        design = self._design(arch, factory)
        layers = self._repeated_layers()
        evaluator = Evaluator(check_capacity=False)
        results = evaluator.evaluate_network(
            design, layers, lambda layer: {"A": 0.5}
        )
        assert len(results) == 4
        # The factory is consulted once per layer (same as the
        # undeduped path — factories may inspect the workload name)...
        assert len(calls) == 4
        # ...but only the two unique (spec, densities, mapping)
        # contents are actually evaluated.
        assert evaluator.cache.sparse.stats()["misses"] == 2

    def test_name_dependent_factory_is_not_merged(self, arch):
        # A factory keyed off the workload *name* legitimately gives
        # identical shapes different schedules; dedupe must not fuse
        # them.
        from repro.mapping.mapping import LevelMapping, Loop, Mapping

        def factory(wl, a):
            k_outer = 2 if wl.name == "block_1" else 4
            return Mapping(
                [
                    LevelMapping("DRAM", [Loop("k", k_outer)]),
                    LevelMapping(
                        "Buffer",
                        [
                            Loop("m", 64),
                            Loop("k", 64 // k_outer),
                            Loop("n", 64),
                        ],
                    ),
                ]
            )

        design = Design("d", arch, SAFSpec(), mapping_factory=factory)
        layers = self._repeated_layers()[:2]  # identical spec + density
        evaluator = Evaluator(check_capacity=False)
        results = evaluator.evaluate_network(
            design, layers, lambda layer: {"A": 0.5}
        )
        assert evaluator.cache.sparse.stats()["misses"] == 2
        by_name = {r.workload_name: r for _l, r in results}
        oracle = Evaluator(check_capacity=False, cache=None)
        for layer in layers:
            workload = Workload.uniform(
                layer.spec, {"A": 0.5}, name=layer.name
            )
            expected = oracle.evaluate(design, workload)
            assert by_name[layer.name].cycles == expected.cycles
            assert by_name[layer.name].energy_pj == expected.energy_pj

    def test_deduped_results_are_bit_identical(self, arch):
        design = self._design(arch)
        layers = self._repeated_layers()
        deduped = Evaluator(check_capacity=False).evaluate_network(
            design, layers, lambda layer: {"A": 0.5}
        )
        # The oracle: evaluate every layer independently, no sharing.
        oracle_ev = Evaluator(check_capacity=False, cache=None)
        for layer, result in deduped:
            workload = Workload.uniform(
                layer.spec, {"A": 0.5}, name=layer.name
            )
            expected = oracle_ev.evaluate(design, workload)
            assert result.workload_name == layer.name
            assert result.cycles == expected.cycles
            assert result.energy_pj == expected.energy_pj
            assert result.energy.per_component == expected.energy.per_component
            assert result.latency.per_component == (
                expected.latency.per_component
            )

    def test_order_and_pairing_preserved(self, arch):
        design = self._design(arch)
        layers = self._repeated_layers()
        results = Evaluator(check_capacity=False).evaluate_network(
            design, layers, lambda layer: {"A": 0.5}
        )
        assert [layer.name for layer, _ in results] == [
            "block_1",
            "block_2",
            "tail",
            "block_3",
        ]
        for layer, result in results:
            assert result.workload_name == layer.name

    def test_distinct_densities_are_not_merged(self, arch):
        design = self._design(arch)
        layers = self._repeated_layers()[:2]  # identical specs...
        densities = {"block_1": 0.5, "block_2": 0.25}  # ...different density
        evaluator = Evaluator(check_capacity=False)
        evaluator.evaluate_network(
            design, layers, lambda layer: {"A": densities[layer.name]}
        )
        assert evaluator.cache.sparse.stats()["misses"] == 2


class TestPoolEdgeCases:
    def test_evaluate_many_empty_parallel(self):
        assert Evaluator().evaluate_many([], parallel=4) == []

    def test_search_empty_candidates_parallel(self, arch, workload):
        design = Design("d", arch)
        assert (
            Evaluator().search_mappings(
                design, workload, candidates=[], parallel=3
            )
            is None
        )

    def test_run_pool_rejects_nothing_on_empty_payloads(self):
        assert Evaluator()._run_pool(print, []) == []

    def test_contiguous_chunks_empty(self):
        from repro.model.engine import _contiguous_chunks

        assert _contiguous_chunks([], 4) == []
        assert _contiguous_chunks([1, 2, 3], 2) == [[1, 2], [3]]

    def test_pool_start_method_env_override(self, monkeypatch):
        from repro.model.engine import _pool_start_method

        monkeypatch.delenv("REPRO_MP_START_METHOD", raising=False)
        assert _pool_start_method() in ("fork", "spawn")
        monkeypatch.setenv("REPRO_MP_START_METHOD", "spawn")
        assert _pool_start_method() == "spawn"

    def test_spawn_context_matches_serial(self, arch, mapping, monkeypatch):
        # Pin the spawn path Linux would otherwise never exercise; the
        # pool must produce results identical to the serial run.
        monkeypatch.setenv("REPRO_MP_START_METHOD", "spawn")
        design = Design("d", arch, SAFSpec(), mapping=mapping)
        jobs = [
            (design, Workload.uniform(matmul(8, 8, 8), {"A": d}))
            for d in (0.25, 0.5)
        ]
        evaluator = Evaluator()
        expected = [evaluator.evaluate(*job) for job in jobs]
        results = evaluator.evaluate_many(jobs, parallel=2)
        for got, want in zip(results, expected):
            assert got.cycles == want.cycles
            assert got.energy_pj == want.energy_pj


class TestUncachedParentWorkers:
    """``cache=None`` must propagate to workers: no shipped state, no
    rebuilt worker cache — not even via the process-global tile-format
    stage riding along in the snapshot."""

    def test_export_state_is_none_even_with_warm_globals(
        self, arch, mapping, workload
    ):
        # Warm the process-global tile-format stage through a cached
        # evaluator first.
        design = Design("d", arch, SAFSpec(), mapping=mapping)
        Evaluator().evaluate(design, workload)
        assert Evaluator(cache=None)._export_cache_state() is None

    def test_initializer_none_forces_uncached_workers(self):
        from repro.model import engine

        # Simulate a worker process that (e.g. under a fork start
        # method) inherited a warm cache from an enclosing context.
        old = (engine._WORKER_CACHE, engine._WORKER_CACHE_INSTALLED)
        try:
            from repro.common.cache import AnalysisCache

            engine._WORKER_CACHE = AnalysisCache()
            engine._WORKER_CACHE_INSTALLED = True
            engine._warm_worker_initializer(None)
            assert engine._WORKER_CACHE is None
            assert engine._WORKER_CACHE_INSTALLED
            bound = engine._bind_worker_cache(Evaluator())
            assert bound.cache is None
        finally:
            engine._WORKER_CACHE, engine._WORKER_CACHE_INSTALLED = old

    def test_bind_without_initializer_leaves_evaluator_alone(self):
        from repro.model import engine

        old = (engine._WORKER_CACHE, engine._WORKER_CACHE_INSTALLED)
        try:
            engine._WORKER_CACHE = None
            engine._WORKER_CACHE_INSTALLED = False
            evaluator = Evaluator()
            assert engine._bind_worker_cache(evaluator) is evaluator
        finally:
            engine._WORKER_CACHE, engine._WORKER_CACHE_INSTALLED = old

    def test_uncached_parallel_matches_uncached_serial(self, arch, mapping):
        design = Design("d", arch, SAFSpec(), mapping=mapping)
        jobs = [
            (design, Workload.uniform(matmul(8, 8, 8), {"A": d}))
            for d in (0.25, 0.5, 0.75)
        ]
        serial = Evaluator(cache=None)
        expected = [serial.evaluate(*job) for job in jobs]
        results = Evaluator(cache=None).evaluate_many(jobs, parallel=2)
        for got, want in zip(results, expected):
            assert got.cycles == want.cycles
            assert got.energy_pj == want.energy_pj


class TestResultReporting:
    def test_summary_contains_key_facts(self, arch, mapping, workload):
        design = Design(
            "d",
            arch,
            SAFSpec(compute_safs=[skip_compute(["A"])]),
            mapping=mapping,
        )
        result = Evaluator().evaluate(design, workload)
        text = result.summary()
        assert "cycles" in text
        assert "energy" in text
        assert "skipped" in text

    def test_level_accessors(self, arch, mapping, workload):
        design = Design("d", arch, SAFSpec(), mapping=mapping)
        result = Evaluator().evaluate(design, workload)
        assert result.level_energy("DRAM") > 0
        assert result.level_cycles("MAC") > 0
        assert result.compression_rate("Buffer", "A") == 1.0

    def test_energy_per_compute(self, arch, mapping, workload):
        design = Design("d", arch, SAFSpec(), mapping=mapping)
        result = Evaluator().evaluate(design, workload)
        assert result.energy_per_compute == pytest.approx(
            result.energy_pj / result.actual_computes
        )
