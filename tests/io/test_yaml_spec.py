"""Tests for the YAML specification front-end (Fig. 6 inputs)."""

import pytest

from repro import Evaluator
from repro.common.errors import SpecError
from repro.io.yaml_spec import (
    _parse_format,
    load_architecture,
    load_design,
    load_mapping,
    load_saf_spec,
    load_workload,
)
from repro.sparse.saf import SAFKind

FULL_SPEC = """
name: fig6-example
arch:
  name: simple
  storage:
    - {name: BackingStorage, component: dram}
    - {name: Buffer, capacity_words: 4096, component: sram,
       read_bandwidth: 4, write_bandwidth: 4}
  compute: {name: MAC, instances: 4}

workload:
  kernel: matmul
  dims: {m: 16, k: 16, n: 16}
  densities: {A: 0.25, B: 0.5}

safs:
  formats:
    - {level: Buffer, tensor: A, format: CSR}
    - {level: BackingStorage, tensor: A, format: B-RLE}
  actions:
    - {kind: skip, target: B, condition_on: [A], level: Buffer}
    - {kind: gate, unit: compute}

mapping:
  - level: BackingStorage
    temporal: [{dim: m, bound: 4}]
  - level: Buffer
    temporal: [{dim: m, bound: 4}, {dim: k, bound: 16},
               {dim: n, bound: 4}]
    spatial: [{dim: n, bound: 4}]
"""


class TestArchitecture:
    def test_round_trip(self):
        arch = load_architecture(FULL_SPEC)
        assert arch.level_names == ["BackingStorage", "Buffer"]
        assert arch.level("Buffer").capacity_words == 4096
        assert arch.compute.instances == 4

    def test_missing_storage_rejected(self):
        with pytest.raises(SpecError):
            load_architecture({"arch": {"name": "x"}})

    def test_missing_level_name_rejected(self):
        with pytest.raises(SpecError):
            load_architecture(
                {"arch": {"storage": [{"capacity_words": 4}]}}
            )


class TestWorkload:
    def test_round_trip(self):
        wl = load_workload(FULL_SPEC)
        assert wl.einsum.dims == {"m": 16, "k": 16, "n": 16}
        assert wl.density_of("A").density == 0.25

    def test_conv_kernel(self):
        wl = load_workload(
            {
                "workload": {
                    "kernel": "conv2d",
                    "dims": {
                        "n": 1, "k": 4, "c": 4, "p": 8, "q": 8,
                        "r": 3, "s": 3,
                    },
                }
            }
        )
        assert wl.einsum.tensor_shape("I") == (1, 4, 10, 10)

    def test_unknown_kernel(self):
        with pytest.raises(SpecError):
            load_workload({"workload": {"kernel": "fft"}})


class TestFormats:
    def test_classic_name(self):
        assert _parse_format("CSR").describe() == "UOP-CP"

    def test_dash_composed(self):
        assert _parse_format("B-UOP-RLE").describe() == "B-UOP-RLE(4b)"

    def test_flattened_superscript(self):
        fmt = _parse_format("CP^2")
        assert fmt.tensor_rank_count == 2

    def test_structured_rank_list(self):
        fmt = _parse_format(
            [
                {"rank": "U"},
                {"rank": "CP", "coord_bits": 2},
            ]
        )
        assert fmt.describe() == "U-CP(2b)"

    def test_unknown_rank(self):
        with pytest.raises(SpecError):
            _parse_format("B-XYZ")


class TestSAFs:
    def test_round_trip(self):
        safs = load_saf_spec(FULL_SPEC)
        assert ("Buffer", "A") in safs.formats
        assert safs.storage_safs[0].kind is SAFKind.SKIP
        assert safs.storage_safs[0].target == "B"
        assert safs.compute_safs[0].kind is SAFKind.GATE


class TestMapping:
    def test_round_trip(self):
        mapping = load_mapping(FULL_SPEC)
        assert mapping.levels[0].level == "BackingStorage"
        assert mapping.levels[1].spatial[0].dim == "n"

    def test_keep_sets(self):
        mapping = load_mapping(
            {
                "mapping": [
                    {"level": "L1", "keep": ["A", "Z"]},
                    {"level": "L0"},
                ]
            }
        )
        assert mapping.levels[0].keep == {"A", "Z"}
        assert mapping.levels[1].keep is None

    def test_non_list_rejected(self):
        with pytest.raises(SpecError):
            load_mapping({"mapping": {"level": "L0"}})


class TestEndToEnd:
    def test_full_spec_evaluates(self):
        design, workload = load_design(FULL_SPEC)
        result = Evaluator().evaluate(design, workload)
        assert result.cycles > 0
        assert result.energy_pj > 0
        # Skipping is active: some computes are eliminated.
        assert result.sparse.compute.skipped > 0

    def test_file_loading(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text(FULL_SPEC)
        design, workload = load_design(str(path))
        assert design.name == "fig6-example"


class TestConstraints:
    CONSTRAINED_SPEC = {
        "constraints": {
            "loop_orders": {"Buffer": ["m", "k", "n"]},
            "spatial_dims": {"Buffer": ["n"]},
            "keep": {"Buffer": ["A", "Z"], "BackingStorage": None},
            "fixed_factors": {"BackingStorage": {"m": 4}},
            "max_permutations": 4,
        }
    }

    def test_round_trip(self):
        from repro.io.yaml_spec import load_constraints

        constraints = load_constraints(self.CONSTRAINED_SPEC)
        assert constraints.loop_orders == {"Buffer": ["m", "k", "n"]}
        assert constraints.spatial_dims == {"Buffer": ["n"]}
        assert constraints.keep == {
            "Buffer": {"A", "Z"},
            "BackingStorage": None,
        }
        assert constraints.fixed_factors == {"BackingStorage": {"m": 4}}
        assert constraints.max_permutations == 4

    def test_unknown_option_rejected(self):
        from repro.io.yaml_spec import load_constraints

        with pytest.raises(SpecError):
            load_constraints({"constraints": {"spacial_dims": {}}})

    @pytest.mark.parametrize(
        "section",
        [
            {"fixed_factors": {"DRAM": None}},
            {"max_permutations": None},
            {"loop_orders": {"Buffer": 5}},
            {"keep": {"Buffer": 3}},
        ],
    )
    def test_malformed_values_raise_spec_error(self, section):
        from repro.io.yaml_spec import load_constraints

        with pytest.raises(SpecError):
            load_constraints({"constraints": section})

    @pytest.mark.parametrize(
        "section,needle",
        [
            ({"loop_orders": {"Bufer": ["m", "k", "n"]}}, "Bufer"),
            ({"spatial_dims": {"Bufer": ["n"]}}, "Bufer"),
            ({"keep": {"Bufer": ["A"]}}, "Bufer"),
            ({"fixed_factors": {"Bufer": {"m": 4}}}, "Bufer"),
            ({"spatial_dims": {"Buffer": ["q"]}}, "q"),
            ({"loop_orders": {"Buffer": ["M", "k", "n"]}}, "M"),
            ({"fixed_factors": {"Buffer": {"q": 4}}}, "q"),
            ({"fixed_factors": {"Buffer": {"m": 3}}}, "cannot tile"),
        ],
    )
    def test_unknown_names_fail_at_load_time(self, section, needle):
        """A typo'd level (or spatial dim) in any constraints container
        is a malformed spec: `load_design` cross-checks the constraints
        against this spec's architecture and workload instead of letting
        a later search silently ignore them."""
        import yaml as _yaml

        spec = _yaml.safe_load(FULL_SPEC)
        del spec["mapping"]
        spec["constraints"] = section
        with pytest.raises(SpecError, match=needle):
            load_design(spec)

    def test_design_with_constraints_section(self):
        import yaml as _yaml

        from repro import Session

        spec = _yaml.safe_load(FULL_SPEC)
        del spec["mapping"]
        spec["constraints"] = {"spatial_dims": {"Buffer": ["n"]}}
        design, workload = load_design(spec)
        assert design.mapping is None
        assert design.constraints is not None
        with Session(search_budget=8) as session:
            assert session.search(design, workload).found


class TestSpecHardening:
    def test_non_dict_spec_rejected(self):
        with pytest.raises(SpecError):
            load_design("- a\n- list\n")

    def test_malformed_yaml_rejected(self):
        with pytest.raises(SpecError):
            load_design("arch: [unclosed\n")
