"""Tests for the command-line entry point."""

import pytest

from repro.__main__ import main
from tests.io.test_yaml_spec import FULL_SPEC


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.yaml"
    path.write_text(FULL_SPEC)
    return str(path)


class TestCLI:
    def test_evaluate(self, spec_file, capsys):
        assert main(["evaluate", spec_file]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "energy" in out

    def test_evaluate_verbose(self, spec_file, capsys):
        assert main(["evaluate", spec_file, "-v"]) == 0
        out = capsys.readouterr().out
        assert "occupancy" in out and "mapping" in out

    def test_evaluate_with_search(self, spec_file, capsys):
        assert main(["evaluate", spec_file, "--search", "--budget", "8"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
