"""Tests for the command-line entry point (built on the repro.api
façade: JSON schema output, search subcommand, error exit codes)."""

import json

import pytest
import yaml

from repro import __version__
from repro.__main__ import main
from repro.model.result import (
    RESULT_SCHEMA_VERSION,
    EvaluationResult,
    SearchResult,
)
from tests.io.test_yaml_spec import FULL_SPEC


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.yaml"
    path.write_text(FULL_SPEC)
    return str(path)


@pytest.fixture
def overflow_spec_file(tmp_path):
    spec = yaml.safe_load(FULL_SPEC)
    spec["arch"]["storage"][1]["capacity_words"] = 4
    path = tmp_path / "overflow.yaml"
    path.write_text(yaml.safe_dump(spec))
    return str(path)


class TestCLI:
    def test_evaluate(self, spec_file, capsys):
        assert main(["evaluate", spec_file]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "energy" in out

    def test_evaluate_verbose(self, spec_file, capsys):
        assert main(["evaluate", spec_file, "-v"]) == 0
        out = capsys.readouterr().out
        assert "occupancy" in out and "mapping" in out
        assert "cache stages" in out

    def test_evaluate_with_search(self, spec_file, capsys):
        assert main(["evaluate", spec_file, "--search", "--budget", "8"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestJsonOutput:
    def test_evaluate_json_round_trips(self, spec_file, capsys):
        assert main(["evaluate", spec_file, "--json", "--cold"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == RESULT_SCHEMA_VERSION
        assert data["kind"] == "evaluation"
        assert EvaluationResult.from_dict(data).to_dict() == data

    def test_search_json_round_trips(self, spec_file, capsys):
        assert main(
            ["search", spec_file, "--json", "--budget", "8", "--cold"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "search"
        assert SearchResult.from_dict(data).to_dict() == data
        assert data["best"]["schema"] == RESULT_SCHEMA_VERSION


class TestSearchCommand:
    def test_search_prints_winner(self, spec_file, capsys):
        assert main(["search", spec_file, "--budget", "8", "--cold"]) == 0
        out = capsys.readouterr().out
        assert "best mapping" in out and "cycles" in out

    def test_search_seed_changes_sampling(self, spec_file):
        # Just proving the flag is wired through; both must succeed.
        assert main(
            ["search", spec_file, "--budget", "8", "--seed", "7", "--cold"]
        ) == 0

    def test_flag_parity_across_subcommands(self, spec_file):
        # Both subcommands accept the full shared flag set.
        assert main(
            ["search", spec_file, "--budget", "8", "--no-capacity-check",
             "--parallel", "2", "--cold"]
        ) == 0
        assert main(
            ["evaluate", spec_file, "--search", "--budget", "8",
             "--seed", "3", "--parallel", "2", "--cold"]
        ) == 0


class TestErrorExitCodes:
    def test_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["evaluate", str(tmp_path / "nope.yaml"), "--cold"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.yaml"
        path.write_text("- just\n- a\n- list\n")
        assert main(["evaluate", str(path), "--cold"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_capacity_overflow_exits_2(self, overflow_spec_file, capsys):
        assert main(["evaluate", overflow_spec_file, "--cold"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "overflow" in err

    def test_overflow_allowed_with_flag(self, overflow_spec_file, capsys):
        code = main(
            ["evaluate", overflow_spec_file, "--no-capacity-check", "--cold"]
        )
        assert code == 0
        assert "cycles" in capsys.readouterr().out
