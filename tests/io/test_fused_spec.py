"""YAML front-end for einsum graphs and fused mappings, plus the
``repro fused`` CLI subcommand."""

import json

import pytest

from repro.__main__ import main
from repro.common.errors import SpecError
from repro.io.yaml_spec import (
    load_einsum_graph,
    load_fused_mapping,
    load_fused_spec,
)
from repro.model.result import FusedResult

GRAPH_SPEC = """
graph:
  name: mlp
  einsums:
    - {kernel: matmul, name: fc1, dims: {m: 32, k: 16, n: 64},
       rename: {Z: H}}
    - {kernel: matmul, name: fc2, dims: {m: 32, k: 64, n: 8},
       rename: {A: H, B: W2, Z: O}}
"""

FUSED_SPEC = (
    """
name: fused-demo
arch:
  name: two-level
  storage:
    - {name: DRAM, component: dram, read_bandwidth: 8, write_bandwidth: 8}
    - {name: Buffer, capacity_words: 65536, component: sram,
       read_bandwidth: 16, write_bandwidth: 16}
  compute: {name: MAC, instances: 4}
"""
    + GRAPH_SPEC
    + """
fused:
  fuse_at: Buffer
densities: {A: 0.5}
"""
)


class TestLoadEinsumGraph:
    def test_kernel_shorthand_with_renames(self):
        graph = load_einsum_graph(GRAPH_SPEC)
        assert graph.name == "mlp"
        assert [spec.name for spec in graph.einsums] == ["fc1", "fc2"]
        assert graph.intermediates == ["H"]
        assert graph.producer_of("H") == "fc1"

    def test_explicit_tensor_form(self):
        from repro.workload.einsum import einsum_to_dict

        graph = load_einsum_graph(GRAPH_SPEC)
        explicit = {
            "graph": {
                "name": "mlp",
                "einsums": [
                    einsum_to_dict(spec) for spec in graph.einsums
                ],
            }
        }
        rebuilt = load_einsum_graph(explicit)
        assert rebuilt.cache_key()[1] == graph.cache_key()[1]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SpecError, match="unknown kernel"):
            load_einsum_graph(
                {"einsums": [{"kernel": "fft", "dims": {"n": 8}}]}
            )

    def test_bad_dims_rejected(self):
        with pytest.raises(SpecError, match="bad dims"):
            load_einsum_graph(
                {"einsums": [{"kernel": "matmul", "dims": {"zz": 8}}]}
            )

    def test_rename_of_unknown_tensor_rejected(self):
        with pytest.raises(SpecError, match="rename"):
            load_einsum_graph(
                {
                    "einsums": [
                        {
                            "kernel": "matmul",
                            "dims": {"m": 4, "k": 4, "n": 4},
                            "rename": {"Q": "H"},
                        }
                    ]
                }
            )

    def test_missing_einsums_rejected(self):
        with pytest.raises(SpecError, match="einsums"):
            load_einsum_graph({"graph": {"name": "empty"}})

    def test_entry_without_kernel_or_tensors_rejected(self):
        with pytest.raises(SpecError, match="kernel"):
            load_einsum_graph({"einsums": [{"name": "mystery"}]})


class TestLoadFusedMapping:
    def test_fuse_at_only(self):
        fused = load_fused_mapping({"fused": {"fuse_at": "Buffer"}})
        assert fused.fuse_at == "Buffer"
        assert fused.mappings is None

    def test_malformed_section_is_spec_error(self):
        with pytest.raises(SpecError):
            load_fused_mapping({"fused": ["not", "a", "dict"]})


class TestLoadFusedSpec:
    def test_full_spec_loads(self):
        design, graph, fused, densities = load_fused_spec(FUSED_SPEC)
        assert design.name == "fused-demo"
        assert graph.name == "mlp"
        assert fused.fuse_at == "Buffer"
        assert densities == {"A": 0.5}
        # No explicit sub-nests or constraints: the generic factory
        # backstops the mapping policy.
        assert design.mapping_factory is not None

    def test_graph_section_required(self):
        with pytest.raises(SpecError, match="graph"):
            load_fused_spec(
                {"arch": {"storage": [{"name": "DRAM", "component": "dram"}]}}
            )

    def test_evaluates_through_session(self):
        from repro.api import Session

        design, graph, fused, densities = load_fused_spec(FUSED_SPEC)
        with Session(check_capacity=False) as session:
            result = session.evaluate_fused(design, graph, densities, fused)
        assert result.fuse_at == "Buffer"
        assert result.intermediate_backing_words == 0


class TestFusedCLI:
    @pytest.fixture
    def fused_spec_file(self, tmp_path):
        path = tmp_path / "fused.yaml"
        path.write_text(FUSED_SPEC)
        return str(path)

    def test_fused_summary(self, fused_spec_file, capsys):
        assert main(["fused", fused_spec_file, "--cold"]) == 0
        out = capsys.readouterr().out
        assert "fused at Buffer" in out
        assert "intermediate H" in out

    def test_fused_verbose_reports_fused_stage(self, fused_spec_file, capsys):
        assert main(["fused", fused_spec_file, "--cold", "-v"]) == 0
        out = capsys.readouterr().out
        assert "cache stages" in out
        assert "fused:" in out

    def test_fused_json_round_trips(self, fused_spec_file, capsys):
        assert main(["fused", fused_spec_file, "--cold", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "fused"
        rebuilt = FusedResult.from_dict(data)
        assert rebuilt.to_dict() == data

    def test_malformed_graph_exits_2(self, tmp_path, capsys):
        # fc2 consumes H with the wrong contraction extent: a
        # shared-tensor shape mismatch, caught at load time.
        bad = FUSED_SPEC.replace("k: 64", "k: 63")
        path = tmp_path / "bad.yaml"
        path.write_text(bad)
        assert main(["fused", str(path), "--cold"]) == 2
        assert "error:" in capsys.readouterr().err
