"""Property-based invariants of the full modeling pipeline.

Across randomly sampled mappings and densities, the model must
preserve conservation laws that hold for any dataflow:

* fine-grained actions partition the dense traffic exactly,
* the output tensor's final words reach the outermost level once,
* skipping never increases cycles, gating never changes them,
* classification fractions stay within [0, 1].
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Evaluator, Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.dataflow import analyze_dataflow
from repro.mapping.mapspace import Mapper, MapspaceConstraints
from repro.micro.latency import compute_latency
from repro.sparse.formats import CoordinatePayload, FormatRank, FormatSpec
from repro.sparse.postprocess import analyze_sparse
from repro.sparse.saf import (
    SAFKind,
    SAFSpec,
    double_sided,
    gate_compute,
    skip_compute,
)


def _arch(macs=4):
    return Architecture(
        "prop",
        [
            StorageLevel("DRAM", None, component="dram"),
            StorageLevel("Buffer", 1 << 20, component="sram"),
        ],
        ComputeLevel("MAC", instances=macs),
    )


cp2 = FormatSpec(
    [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
)

SAF_CHOICES = [
    SAFSpec(),
    SAFSpec(compute_safs=[gate_compute()]),
    SAFSpec(
        formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
        compute_safs=[skip_compute(["A"])],
    ),
    SAFSpec(
        formats={("Buffer", "A"): cp2, ("Buffer", "B"): cp2},
        storage_safs=double_sided(SAFKind.SKIP, "A", "B", "Buffer"),
    ),
]


@st.composite
def _scenario(draw):
    m = draw(st.sampled_from([4, 8, 16]))
    k = draw(st.sampled_from([4, 8, 16]))
    n = draw(st.sampled_from([4, 8]))
    da = draw(st.sampled_from([0.1, 0.3, 0.5, 1.0]))
    db = draw(st.sampled_from([0.2, 0.6, 1.0]))
    seed = draw(st.integers(min_value=0, max_value=50))
    saf_index = draw(st.integers(min_value=0, max_value=len(SAF_CHOICES) - 1))
    return m, k, n, da, db, seed, saf_index


@given(_scenario())
@settings(max_examples=40, deadline=None)
def test_action_conservation_over_random_mappings(scenario):
    m, k, n, da, db, seed, saf_index = scenario
    arch = _arch()
    workload = Workload.uniform(matmul(m, k, n), {"A": da, "B": db})
    mapper = Mapper(
        workload.einsum,
        arch,
        MapspaceConstraints(spatial_dims={"Buffer": ["n"]}),
    )
    mappings = list(mapper.sample_mappings(2, seed=seed))
    safs = SAF_CHOICES[saf_index]
    for mapping in mappings:
        dense = analyze_dataflow(workload, arch, mapping)
        sparse = analyze_sparse(dense, safs)
        # 1. Partition: breakdowns sum to the dense counts.
        for (level, tensor), record in dense.traffic.items():
            actions = sparse.at(level, tensor)
            assert actions.data_reads.total == pytest.approx(
                record.reads, rel=1e-9, abs=1e-9
            )
            assert actions.data_writes.total == pytest.approx(
                record.writes, rel=1e-9, abs=1e-9
            )
            for breakdown in (actions.data_reads, actions.data_writes):
                assert breakdown.actual >= -1e-9
                assert breakdown.gated >= -1e-9
                assert breakdown.skipped >= -1e-9
        assert sparse.compute.total == pytest.approx(dense.computes)
        # 2. The full output leaves for DRAM exactly once (dense terms).
        z = dense.at("DRAM", "Z")
        assert z.writes >= workload.einsum.tensor_size("Z") - 1e-9


@given(_scenario())
@settings(max_examples=20, deadline=None)
def test_skipping_never_slower_gating_never_faster(scenario):
    m, k, n, da, db, seed, _ = scenario
    arch = _arch()
    workload = Workload.uniform(matmul(m, k, n), {"A": da, "B": db})
    mapper = Mapper(workload.einsum, arch)
    mapping = next(mapper.sample_mappings(1, seed=seed), None)
    if mapping is None:
        return
    dense = analyze_dataflow(workload, arch, mapping)

    def cycles(safs):
        sparse = analyze_sparse(dense, safs)
        return compute_latency(arch, dense, sparse).cycles

    base = cycles(SAFSpec())
    gated = cycles(SAFSpec(compute_safs=[gate_compute()]))
    skipped = cycles(SAFSpec(compute_safs=[skip_compute()]))
    assert gated == pytest.approx(base)
    assert skipped <= base + 1e-9


@given(
    da=st.floats(min_value=0.01, max_value=1.0),
    db=st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=30, deadline=None)
def test_energy_monotone_in_density(da, db):
    """Denser workloads never cost less energy under skipping."""
    arch = _arch()
    ev = Evaluator(check_capacity=False)
    from repro.model.engine import Design
    from repro.mapping.mapping import LevelMapping, Loop, Mapping

    mapping = Mapping(
        [
            LevelMapping("DRAM", []),
            LevelMapping(
                "Buffer",
                [Loop("m", 16), Loop("n", 8), Loop("k", 16)],
            ),
        ]
    )
    safs = SAF_CHOICES[3]
    design = Design("d", arch, safs, mapping=mapping)

    def energy(scale):
        wl = Workload.uniform(
            matmul(16, 16, 8),
            {"A": min(1.0, da * scale), "B": min(1.0, db * scale)},
        )
        return ev.evaluate(design, wl).energy_pj

    assert energy(1.0) <= energy(1.5) * (1 + 1e-9) or da >= 0.67
