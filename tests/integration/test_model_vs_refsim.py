"""Integration: the analytical model vs the cycle-level simulator.

This is the repository's equivalent of the paper's validation
methodology (Sec 6.3): on small workloads with actual data, the
statistical model's expected counts must track the simulator's exact
counts, and with hypergeometric (exact-count) density models many
quantities match exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.dataflow import analyze_dataflow
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.refsim import CycleLevelSimulator
from repro.sparse.density import ActualDataDensity
from repro.sparse.formats import (
    CoordinatePayload,
    FormatRank,
    FormatSpec,
)
from repro.sparse.postprocess import analyze_sparse
from repro.sparse.saf import SAFSpec, skip_compute, skip_storage
from repro.tensor.generator import uniform_random_tensor


def _arch():
    return Architecture(
        "a",
        [StorageLevel("DRAM", None), StorageLevel("Buffer", 65536)],
        ComputeLevel("MAC", instances=1),
    )


def _mapping(spec, order, dram=()):
    rem = dict(spec.dims)
    dram_loops = []
    for dim, bound in dram:
        dram_loops.append(Loop(dim, bound))
        rem[dim] //= bound
    return Mapping(
        [
            LevelMapping("DRAM", dram_loops),
            LevelMapping("Buffer", [Loop(d, rem[d]) for d in order]),
        ]
    )


def _run_both(spec, mapping, data, safs, densities):
    arch = _arch()
    sim = CycleLevelSimulator(spec, arch, mapping, data, safs)
    sim_counts = sim.run()
    wl = Workload(spec, densities)
    dense = analyze_dataflow(wl, arch, mapping)
    sparse = analyze_sparse(dense, safs)
    return sim_counts, sparse


cp2 = FormatSpec(
    [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
)


class TestExactAgreementWithActualData:
    """With actual-data density models, expectations become exact."""

    def test_compute_classification(self):
        spec = matmul(8, 8, 8)
        a = uniform_random_tensor((8, 8), 0.3, seed=5)
        b = uniform_random_tensor((8, 8), 0.6, seed=6)
        data = {"A": a, "B": b, "Z": np.zeros((8, 8))}
        safs = SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            compute_safs=[skip_compute(["A"])],
        )
        mapping = _mapping(spec, ("m", "k", "n"))
        densities = {"A": ActualDataDensity(a), "B": ActualDataDensity(b)}
        sim, model = _run_both(spec, mapping, data, safs, densities)
        assert model.compute.actual == pytest.approx(sim.computes.actual)
        assert model.compute.skipped == pytest.approx(sim.computes.skipped)

    def test_operand_fills(self):
        spec = matmul(8, 8, 8)
        a = uniform_random_tensor((8, 8), 0.25, seed=1)
        b = uniform_random_tensor((8, 8), 0.5, seed=2)
        data = {"A": a, "B": b, "Z": np.zeros((8, 8))}
        safs = SAFSpec(formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2})
        mapping = _mapping(spec, ("m", "k", "n"), dram=[("m", 2)])
        densities = {"A": ActualDataDensity(a), "B": ActualDataDensity(b)}
        sim, model = _run_both(spec, mapping, data, safs, densities)
        assert model.at("Buffer", "A").data_writes.actual == pytest.approx(
            sim.writes[("Buffer", "A")].actual
        )
        assert model.at("Buffer", "B").data_writes.actual == pytest.approx(
            sim.writes[("Buffer", "B")].actual
        )

    def test_output_traffic(self):
        spec = matmul(8, 8, 8)
        a = uniform_random_tensor((8, 8), 1.0, seed=1)
        b = uniform_random_tensor((8, 8), 1.0, seed=2)
        data = {"A": a, "B": b, "Z": np.zeros((8, 8))}
        mapping = _mapping(spec, ("m", "k", "n"), dram=[("k", 2), ("m", 2)])
        sim, model = _run_both(spec, mapping, data, SAFSpec(), {})
        z_model = model.at("Buffer", "Z")
        z_sim_w = sim.writes[("Buffer", "Z")].actual
        z_sim_r = sim.reads[("Buffer", "Z")].actual
        assert z_model.data_writes.actual == pytest.approx(z_sim_w)
        assert z_model.data_reads.actual == pytest.approx(z_sim_r)


class TestStatisticalAgreement:
    """Uniform (hypergeometric) models track the simulator within a few
    percent — the paper's 0.1%-8% validation band."""

    @given(
        da=st.sampled_from([0.125, 0.25, 0.5, 0.75]),
        db=st.sampled_from([0.25, 0.5, 1.0]),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=12, deadline=None)
    def test_compute_skipping_band(self, da, db, seed):
        spec = matmul(8, 8, 8)
        a = uniform_random_tensor((8, 8), da, seed=seed)
        b = uniform_random_tensor((8, 8), db, seed=seed + 100)
        data = {"A": a, "B": b, "Z": np.zeros((8, 8))}
        safs = SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            compute_safs=[skip_compute(["A"])],
        )
        mapping = _mapping(spec, ("m", "k", "n"))
        # Uniform models bound to the true tensor sizes.
        wl = Workload.uniform(spec, {"A": da, "B": db})
        arch = _arch()
        sim = CycleLevelSimulator(spec, arch, mapping, data, safs).run()
        dense = analyze_dataflow(wl, arch, mapping)
        model = analyze_sparse(dense, safs)
        # The nonzero *count* is exact under the hypergeometric model,
        # so compute classification matches exactly.
        assert model.compute.actual == pytest.approx(sim.computes.actual)

    def test_leader_follower_band(self):
        """Skip B <- A with a column leader: statistical vs exact.

        On an 8x8 workload the empirical column-emptiness is noisy
        (only 8 columns per trial), so the acceptance band is slightly
        wider than the paper's full-layer 8%.
        """
        spec = matmul(8, 8, 8)
        errors = []
        for seed in range(24):
            a = uniform_random_tensor((8, 8), 0.25, seed=seed)
            b = uniform_random_tensor((8, 8), 0.75, seed=seed + 50)
            data = {"A": a, "B": b, "Z": np.zeros((8, 8))}
            safs = SAFSpec(
                storage_safs=[skip_storage("B", ["A"], "Buffer")]
            )
            # Innermost m loop: leader is a column of A (Fig. 10).
            mapping = _mapping(spec, ("k", "n", "m"))
            arch = _arch()
            sim = CycleLevelSimulator(spec, arch, mapping, data, safs).run()
            wl = Workload.uniform(spec, {"A": 0.25, "B": 0.75})
            dense = analyze_dataflow(wl, arch, mapping)
            model = analyze_sparse(dense, safs)
            sim_reads = sim.reads[("Buffer", "B")].actual
            model_reads = model.at("Buffer", "B").data_reads.actual
            errors.append(abs(model_reads - sim_reads) / max(1, sim_reads))
        # Average error within a small-sample validation band.
        assert sum(errors) / len(errors) < 0.12
