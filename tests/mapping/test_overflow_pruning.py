"""Capacity-overflow feedback: mapper-side dominance pruning.

The engine's prefilter registers monotone infeasibility witnesses with
the mapper; the mapper then skips dominated candidates — and whole
factorization subtrees — without ever changing which mapping wins.
"""

from __future__ import annotations

from repro import Design, Evaluator, SAFSpec, Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.mapping.mapspace import Mapper, MapspaceConstraints


def tiny_buffer_arch(capacity=1024) -> Architecture:
    return Architecture(
        "tiny",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Buffer", capacity, component="sram",
                         read_bandwidth=8, write_bandwidth=8),
        ],
        ComputeLevel("MAC", instances=1),
    )


def overflowing_workload() -> Workload:
    # 64^2 = 4096-word tensors against a 1024-word buffer: most
    # factorizations overflow, many of them provably (dense tensors
    # make the prefilter's monotone bound exact).
    return Workload.uniform(matmul(64, 64, 64), {"A": 0.9, "B": 0.9})


class TestRegisterOverflow:
    def test_witness_set_stays_minimal(self):
        wl = overflowing_workload()
        mapper = Mapper(wl.einsum, tiny_buffer_arch())
        mapper.register_overflow("Buffer", {"m": 16, "k": 16, "n": 1})
        # A strictly-dominating witness adds nothing.
        mapper.register_overflow("Buffer", {"m": 32, "k": 16, "n": 1})
        assert mapper.overflow_witness_count == 1
        # A strictly-dominated witness replaces the weaker one.
        mapper.register_overflow("Buffer", {"m": 8, "k": 8, "n": 1})
        assert mapper.overflow_witness_count == 1
        # An incomparable witness coexists.
        mapper.register_overflow("Buffer", {"m": 1, "k": 1, "n": 32})
        assert mapper.overflow_witness_count == 2

    def test_new_witness_replaces_every_dominated_existing(self):
        """One sufficiently weak witness sweeps out *all* existing
        witnesses it dominates, not just the first."""
        wl = overflowing_workload()
        mapper = Mapper(wl.einsum, tiny_buffer_arch())
        mapper.register_overflow("Buffer", {"m": 16, "k": 4})
        mapper.register_overflow("Buffer", {"m": 4, "k": 16})
        mapper.register_overflow("Buffer", {"n": 32})
        assert mapper.overflow_witness_count == 3
        # {m:2, k:2} is dominated by both m/k witnesses' regions'
        # complements — i.e. it dominates neither, but both existing
        # m/k witnesses dominate it, so both are replaced; the
        # incomparable n-witness survives.
        mapper.register_overflow("Buffer", {"m": 2, "k": 2})
        assert mapper.overflow_witness_count == 2

    def test_equal_witness_is_discarded(self):
        wl = overflowing_workload()
        mapper = Mapper(wl.einsum, tiny_buffer_arch())
        mapper.register_overflow("Buffer", {"m": 8, "k": 8})
        mapper.register_overflow("Buffer", {"m": 8, "k": 8})
        assert mapper.overflow_witness_count == 1

    def test_unit_extents_are_normalised_out(self):
        """Extents of 1 say nothing (every candidate has extent >= 1),
        so they must not make two equivalent witnesses look distinct."""
        wl = overflowing_workload()
        mapper = Mapper(wl.einsum, tiny_buffer_arch())
        mapper.register_overflow("Buffer", {"m": 8, "k": 8, "n": 1})
        mapper.register_overflow("Buffer", {"m": 8, "k": 8})
        assert mapper.overflow_witness_count == 1

    def test_witnesses_per_level_are_independent(self):
        wl = overflowing_workload()
        arch = tiny_buffer_arch()
        mapper = Mapper(wl.einsum, arch)
        mapper.register_overflow("Buffer", {"m": 8})
        mapper.register_overflow("DRAM", {"m": 8})
        assert mapper.overflow_witness_count == 2

    def test_unknown_level_rejected(self):
        import pytest

        from repro.common.errors import MappingError

        wl = overflowing_workload()
        mapper = Mapper(wl.einsum, tiny_buffer_arch())
        with pytest.raises(MappingError):
            mapper.register_overflow("NoSuchLevel", {"m": 2})


class TestEnumerationPruning:
    def test_pruned_stream_is_unpruned_minus_dominated(self):
        wl = overflowing_workload()
        arch = tiny_buffer_arch()
        baseline = Mapper(wl.einsum, arch)
        full = [m.cache_key() for m in baseline.enumerate_mappings()]

        pruned_mapper = Mapper(wl.einsum, arch)
        witness = {"m": 32, "k": 32}
        pruned_mapper.register_overflow("Buffer", witness)
        pruned = [m.cache_key() for m in pruned_mapper.enumerate_mappings()]

        assert len(pruned) < len(full)
        assert set(pruned) <= set(full)
        assert (
            pruned_mapper.pruned_subtrees + pruned_mapper.pruned_candidates > 0
        )
        # Every dropped candidate dominates the witness at the Buffer:
        # its m- and k-extents there are >= 32.
        dropped = set(full) - set(pruned)
        assert dropped
        for key in dropped:
            # key levels are outermost-first; accumulate the tile
            # extents at the Buffer by walking innermost-first.
            extents = {"m": 1, "k": 1, "n": 1}
            seen_buffer = False
            for level, temporal, spatial, _keep in reversed(key):
                for loop in temporal + spatial:
                    extents[loop.dim] *= loop.bound
                if level == "Buffer":
                    seen_buffer = True
                    break
            assert seen_buffer
            assert extents["m"] >= 32 and extents["k"] >= 32

    def test_counters_distinguish_candidates_from_subtrees(self):
        """`pruned_candidates` counts fully-built dominated candidates;
        `pruned_subtrees` counts factorization prefixes cut before
        enumeration descended into them. Both observability counters
        must move under a witness that bites."""
        wl = overflowing_workload()
        arch = tiny_buffer_arch()
        mapper = Mapper(wl.einsum, arch)
        assert mapper.pruned_candidates == 0
        assert mapper.pruned_subtrees == 0
        mapper.register_overflow("Buffer", {"m": 16, "k": 16})
        list(mapper.enumerate_mappings())
        assert mapper.pruned_subtrees > 0
        # Sampling (no subtree structure) moves only the candidate
        # counter.
        sampler = Mapper(wl.einsum, arch)
        sampler.register_overflow("Buffer", {"m": 16, "k": 16})
        list(sampler.sample_mappings(30, seed=11))
        assert sampler.pruned_candidates > 0
        assert sampler.pruned_subtrees == 0

    def test_sampling_counts_pruned_toward_budget(self):
        wl = overflowing_workload()
        arch = tiny_buffer_arch()
        baseline = Mapper(wl.einsum, arch)
        full = [m.cache_key() for m in baseline.sample_mappings(20, seed=11)]

        pruned_mapper = Mapper(wl.einsum, arch)
        pruned_mapper.register_overflow("Buffer", {"m": 16, "k": 16})
        pruned = [
            m.cache_key() for m in pruned_mapper.sample_mappings(20, seed=11)
        ]
        # Same draw sequence: the pruned run yields a subsequence of
        # the unpruned run (doomed candidates withheld, never replaced).
        assert set(pruned) <= set(full)
        it = iter(full)
        assert all(any(key == other for other in it) for key in pruned)


class TestEngineFeedback:
    def _search_setup(self):
        arch = tiny_buffer_arch()
        constraints = MapspaceConstraints()
        design = Design("d", arch, SAFSpec(), constraints=constraints)
        return design, overflowing_workload()

    def test_feedback_preserves_search_result(self):
        design, wl = self._search_setup()
        with_feedback = Evaluator(search_budget=64, prefilter_capacity=True)
        without = Evaluator(search_budget=64, prefilter_capacity=False)
        a = with_feedback.search_mappings(design, wl)
        b = without.search_mappings(design, wl)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.cycles == b.cycles
            assert a.energy_pj == b.energy_pj
            assert a.dense.mapping.cache_key() == b.dense.mapping.cache_key()

    def test_overflow_reasons_register_witnesses(self):
        design, wl = self._search_setup()
        evaluator = Evaluator(search_budget=64)
        mapper = Mapper(wl.einsum, design.arch, design.constraints)
        best = evaluator._search_candidates(
            design, wl, mapper.enumerate_mappings(), None, mapper=mapper
        )
        assert mapper.overflow_witness_count > 0
        assert mapper.pruned_subtrees + mapper.pruned_candidates > 0
        # The pruned search still finds the same winner as a scan with
        # no feedback at all.
        reference = Evaluator(search_budget=64)._search_candidates(
            design, wl,
            Mapper(wl.einsum, design.arch, design.constraints)
            .enumerate_mappings(),
            None,
        )
        assert (best is None) == (reference is None)
        if best is not None:
            assert best[0] == reference[0]
            assert best[2].dense.mapping.cache_key() == (
                reference[2].dense.mapping.cache_key()
            )

    def test_overflow_reason_fields(self):
        design, wl = self._search_setup()
        evaluator = Evaluator()
        mapper = Mapper(wl.einsum, design.arch, design.constraints)
        overflowing = None
        for mapping in mapper.enumerate_mappings():
            reason = evaluator._capacity_overflow(design, wl, mapping)
            if reason is not None:
                overflowing = reason
                break
        assert overflowing is not None
        assert overflowing.level == "Buffer"
        assert overflowing.used_words > overflowing.capacity_words
        # Dense tensors: the monotone bound equals the full bound, so
        # the extents are a sound dominance witness.
        assert overflowing.monotone
