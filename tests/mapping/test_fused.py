"""FusedMapping: spec round-trips, the keep transform, validation."""

import pytest

from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.errors import MappingError
from repro.mapping.fused import FusedMapping
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from tests.workload.test_graph import chain_graph


def two_level_arch():
    return Architecture(
        "two-level",
        [
            StorageLevel("DRAM", capacity_words=None, component="dram"),
            StorageLevel("Buffer", capacity_words=1 << 16, component="sram"),
        ],
        ComputeLevel("MAC", instances=4),
    )


def sub_nest(keep_outer=None, keep_inner=None):
    return Mapping(
        [
            LevelMapping("DRAM", [Loop("m", 2)], keep=keep_outer),
            LevelMapping(
                "Buffer",
                [Loop("m", 4), Loop("k", 4), Loop("n", 16)],
                keep=keep_inner,
            ),
        ]
    )


class TestSpecRoundTrip:
    def test_default_is_degenerate(self):
        fused = FusedMapping()
        assert fused.fuse_at is None
        assert fused.mapping_for("anything") is None

    def test_round_trip_with_mappings(self):
        fused = FusedMapping(
            mappings={"fc1": sub_nest(), "fc2": sub_nest()},
            fuse_at="Buffer",
        )
        spec = fused.to_spec()
        rebuilt = FusedMapping.from_spec(spec)
        assert rebuilt.to_spec() == spec
        assert rebuilt.cache_key() == fused.cache_key()

    def test_round_trip_degenerate(self):
        fused = FusedMapping()
        rebuilt = FusedMapping.from_spec(fused.to_spec())
        assert rebuilt.cache_key() == fused.cache_key()

    def test_from_spec_rejects_non_dict(self):
        with pytest.raises(MappingError):
            FusedMapping.from_spec(["not", "a", "dict"])

    def test_cache_key_orders_by_einsum_name(self):
        a = FusedMapping(mappings={"x": sub_nest(), "y": sub_nest()})
        b = FusedMapping(mappings={"y": sub_nest(), "x": sub_nest()})
        assert a.cache_key() == b.cache_key()


class TestFusedLevels:
    def test_strips_intermediates_outside_fuse_level(self):
        fused = FusedMapping(fuse_at="Buffer")
        mapping = sub_nest()  # keep=None everywhere
        out = fused.fused_levels(mapping, {"H", "C", "O"}, {"H"})
        # DRAM level: materialised to an explicit keep without H.
        assert out.levels[0].keep == {"C", "O"}
        # The fusion level itself is untouched (still keeps everything).
        assert out.levels[1].keep is None

    def test_explicit_keeps_also_stripped(self):
        fused = FusedMapping(fuse_at="Buffer")
        mapping = sub_nest(keep_outer={"H", "O"})
        out = fused.fused_levels(mapping, {"H", "C", "O"}, {"H"})
        assert out.levels[0].keep == {"O"}

    def test_untouched_when_degenerate_or_no_intermediates(self):
        mapping = sub_nest()
        assert FusedMapping().fused_levels(mapping, {"A"}, {"A"}) is mapping
        fused = FusedMapping(fuse_at="Buffer")
        assert fused.fused_levels(mapping, {"A"}, set()) is mapping

    def test_levels_outside_without_intermediate_untouched(self):
        fused = FusedMapping(fuse_at="Buffer")
        mapping = sub_nest(keep_outer={"O"})
        out = fused.fused_levels(mapping, {"H", "C", "O"}, {"H"})
        assert out.levels[0] is mapping.levels[0]

    def test_loop_structure_preserved(self):
        fused = FusedMapping(fuse_at="Buffer")
        mapping = sub_nest()
        out = fused.fused_levels(mapping, {"H", "C", "O"}, {"H"})
        assert [
            [(l.dim, l.bound) for l in lvl.temporal] for lvl in out.levels
        ] == [
            [(l.dim, l.bound) for l in lvl.temporal]
            for lvl in mapping.levels
        ]


class TestValidate:
    def test_unknown_einsum_rejected(self):
        fused = FusedMapping(mappings={"nope": sub_nest()})
        with pytest.raises(MappingError, match="unknown einsum"):
            fused.validate(chain_graph(), two_level_arch())

    def test_unknown_fuse_level_rejected(self):
        fused = FusedMapping(fuse_at="L99")
        with pytest.raises(MappingError, match="storage level"):
            fused.validate(chain_graph(), two_level_arch())

    def test_sub_nest_not_keeping_intermediate_at_fuse_level_rejected(self):
        fused = FusedMapping(
            mappings={"fc1": sub_nest(keep_inner={"A", "B"})},
            fuse_at="Buffer",
        )
        with pytest.raises(MappingError, match="does not keep"):
            fused.validate(chain_graph(), two_level_arch())

    def test_valid_fused_mapping_passes(self):
        fused = FusedMapping(
            mappings={"fc1": sub_nest(), "fc2": sub_nest()},
            fuse_at="Buffer",
        )
        fused.validate(chain_graph(), two_level_arch())
