"""Unit tests for mapspace enumeration and sampling."""

import pytest

from repro import matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.util import prod
from repro.mapping.mapspace import Mapper, MapspaceConstraints


@pytest.fixture
def arch():
    return Architecture(
        "a",
        [StorageLevel("DRAM", None), StorageLevel("Buffer", 4096)],
        ComputeLevel("MAC", instances=4),
    )


def _factors_product(mapping, dim):
    total = 1
    for lvl in mapping.levels:
        for loop in lvl.loops():
            if loop.dim == dim:
                total *= loop.bound
    return total


class TestEnumeration:
    def test_all_candidates_valid(self, arch):
        spec = matmul(4, 4, 4)
        mapper = Mapper(spec, arch)
        mappings = list(mapper.enumerate_mappings())
        assert mappings
        for m in mappings:
            m.validate(spec, arch)

    def test_factorizations_exact(self, arch):
        spec = matmul(4, 2, 4)
        for m in Mapper(spec, arch).enumerate_mappings(limit=20):
            for dim, bound in spec.dims.items():
                assert _factors_product(m, dim) == bound

    def test_limit_respected(self, arch):
        mapper = Mapper(matmul(8, 8, 8), arch)
        assert len(list(mapper.enumerate_mappings(limit=5))) == 5

    def test_spatial_constraint_generates_spatial_loops(self, arch):
        constraints = MapspaceConstraints(spatial_dims={"Buffer": ["n"]})
        mapper = Mapper(matmul(4, 4, 4), arch, constraints)
        found_spatial = False
        for m in mapper.enumerate_mappings():
            if m.level("Buffer").spatial:
                found_spatial = True
                assert m.level("Buffer").spatial_fanout <= 4
        assert found_spatial

    def test_fixed_factors_pin_choice(self, arch):
        constraints = MapspaceConstraints(
            fixed_factors={"Buffer": {"m": 4}}
        )
        mapper = Mapper(matmul(4, 4, 4), arch, constraints)
        for m in mapper.enumerate_mappings():
            buffer_m = [
                l.bound for l in m.level("Buffer").temporal if l.dim == "m"
            ]
            assert buffer_m == [4]

    def test_loop_order_constraint(self, arch):
        constraints = MapspaceConstraints(
            loop_orders={"Buffer": ["n", "k", "m"]},
            fixed_factors={"Buffer": {"m": 4, "n": 4, "k": 4}},
        )
        mapper = Mapper(matmul(4, 4, 4), arch, constraints)
        m = next(mapper.enumerate_mappings())
        dims = [l.dim for l in m.level("Buffer").temporal]
        assert dims == ["n", "k", "m"]

    def test_keep_constraint_applied(self, arch):
        constraints = MapspaceConstraints(keep={"Buffer": {"A", "Z"}})
        mapper = Mapper(matmul(4, 4, 4), arch, constraints)
        m = next(mapper.enumerate_mappings())
        assert m.level("Buffer").keep == {"A", "Z"}


class TestSampling:
    def test_samples_are_valid(self, arch):
        spec = matmul(16, 16, 16)
        mapper = Mapper(spec, arch)
        samples = list(mapper.sample_mappings(10, seed=3))
        assert len(samples) == 10
        for m in samples:
            m.validate(spec, arch)

    def test_deterministic_given_seed(self, arch):
        spec = matmul(8, 8, 8)
        a = [m.describe() for m in Mapper(spec, arch).sample_mappings(5, seed=7)]
        b = [m.describe() for m in Mapper(spec, arch).sample_mappings(5, seed=7)]
        assert a == b


class TestSizeEstimate:
    def test_positive_and_monotone(self, arch):
        small = Mapper(matmul(2, 2, 2), arch).mapspace_size_estimate()
        large = Mapper(matmul(8, 8, 8), arch).mapspace_size_estimate()
        assert 0 < small < large
