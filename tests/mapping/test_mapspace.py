"""Unit tests for mapspace enumeration and sampling."""

import pytest

from repro import matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.util import prod
from repro.mapping.mapspace import Mapper, MapspaceConstraints


@pytest.fixture
def arch():
    return Architecture(
        "a",
        [StorageLevel("DRAM", None), StorageLevel("Buffer", 4096)],
        ComputeLevel("MAC", instances=4),
    )


def _factors_product(mapping, dim):
    total = 1
    for lvl in mapping.levels:
        for loop in lvl.loops():
            if loop.dim == dim:
                total *= loop.bound
    return total


class TestEnumeration:
    def test_all_candidates_valid(self, arch):
        spec = matmul(4, 4, 4)
        mapper = Mapper(spec, arch)
        mappings = list(mapper.enumerate_mappings())
        assert mappings
        for m in mappings:
            m.validate(spec, arch)

    def test_factorizations_exact(self, arch):
        spec = matmul(4, 2, 4)
        for m in Mapper(spec, arch).enumerate_mappings(limit=20):
            for dim, bound in spec.dims.items():
                assert _factors_product(m, dim) == bound

    def test_limit_respected(self, arch):
        mapper = Mapper(matmul(8, 8, 8), arch)
        assert len(list(mapper.enumerate_mappings(limit=5))) == 5

    def test_spatial_constraint_generates_spatial_loops(self, arch):
        constraints = MapspaceConstraints(spatial_dims={"Buffer": ["n"]})
        mapper = Mapper(matmul(4, 4, 4), arch, constraints)
        found_spatial = False
        for m in mapper.enumerate_mappings():
            if m.level("Buffer").spatial:
                found_spatial = True
                assert m.level("Buffer").spatial_fanout <= 4
        assert found_spatial

    def test_fixed_factors_pin_choice(self, arch):
        constraints = MapspaceConstraints(
            fixed_factors={"Buffer": {"m": 4}}
        )
        mapper = Mapper(matmul(4, 4, 4), arch, constraints)
        for m in mapper.enumerate_mappings():
            buffer_m = [
                l.bound for l in m.level("Buffer").temporal if l.dim == "m"
            ]
            assert buffer_m == [4]

    def test_loop_order_constraint(self, arch):
        constraints = MapspaceConstraints(
            loop_orders={"Buffer": ["n", "k", "m"]},
            fixed_factors={"Buffer": {"m": 4, "n": 4, "k": 4}},
        )
        mapper = Mapper(matmul(4, 4, 4), arch, constraints)
        m = next(mapper.enumerate_mappings())
        dims = [l.dim for l in m.level("Buffer").temporal]
        assert dims == ["n", "k", "m"]

    def test_keep_constraint_applied(self, arch):
        constraints = MapspaceConstraints(keep={"Buffer": {"A", "Z"}})
        mapper = Mapper(matmul(4, 4, 4), arch, constraints)
        m = next(mapper.enumerate_mappings())
        assert m.level("Buffer").keep == {"A", "Z"}


class TestSampling:
    def test_samples_are_valid(self, arch):
        spec = matmul(16, 16, 16)
        mapper = Mapper(spec, arch)
        samples = list(mapper.sample_mappings(10, seed=3))
        assert len(samples) == 10
        for m in samples:
            m.validate(spec, arch)

    def test_deterministic_given_seed(self, arch):
        spec = matmul(8, 8, 8)
        a = [m.describe() for m in Mapper(spec, arch).sample_mappings(5, seed=7)]
        b = [m.describe() for m in Mapper(spec, arch).sample_mappings(5, seed=7)]
        assert a == b

    def test_samples_honor_fixed_factors(self, arch):
        """Random draws must respect pinned tiling factors exactly as
        enumeration does (regression: the sampler used to ignore
        ``fixed_factors`` entirely)."""
        spec = matmul(16, 8, 16)
        constraints = MapspaceConstraints(
            fixed_factors={"Buffer": {"m": 4, "k": 2}}
        )
        samples = list(
            Mapper(spec, arch, constraints).sample_mappings(12, seed=1)
        )
        assert samples
        for m in samples:
            m.validate(spec, arch)
            buffer_m = [
                l.bound for l in m.level("Buffer").temporal if l.dim == "m"
            ]
            buffer_k = [
                l.bound for l in m.level("Buffer").temporal if l.dim == "k"
            ]
            assert buffer_m == [4], m.describe()
            assert buffer_k == [2], m.describe()

    def test_pinned_sampling_deterministic_given_seed(self, arch):
        """Pins keep the draw-sequence contract: same seed, same
        stream (the free slots are drawn through the same RNG calls
        every run)."""
        spec = matmul(16, 8, 16)
        constraints = MapspaceConstraints(fixed_factors={"Buffer": {"m": 4}})
        a = [
            m.describe()
            for m in Mapper(spec, arch, constraints).sample_mappings(
                6, seed=2
            )
        ]
        b = [
            m.describe()
            for m in Mapper(spec, arch, constraints).sample_mappings(
                6, seed=2
            )
        ]
        assert a == b and a

    def test_unsatisfiable_pins_rejected_at_construction(self, arch):
        """Pins whose product cannot tile the bound (or non-positive
        factors) make the whole mapspace empty; the mapper fails fast
        with the real cause instead of letting every search come back
        'no valid mapping found'."""
        from repro.common.errors import MappingError

        spec = matmul(8, 8, 8)
        for factors in ({"m": 3}, {"m": 0}, {"m": -2}, {"m": 16}):
            with pytest.raises(MappingError, match="cannot tile"):
                Mapper(
                    spec,
                    arch,
                    MapspaceConstraints(fixed_factors={"Buffer": factors}),
                )

    def test_max_tries_zero_means_zero(self, arch):
        """An explicit ``max_tries=0`` is a hard cap of zero tries, not
        an alias for the default budget."""
        spec = matmul(8, 8, 8)
        assert list(Mapper(spec, arch).sample_mappings(5, max_tries=0)) == []
        # None still selects the default budget.
        assert len(list(Mapper(spec, arch).sample_mappings(5, seed=0))) == 5


class TestConstraintValidation:
    def test_unknown_levels_rejected_consistently(self, arch):
        """All four per-level constraint containers validate their
        level names (regression: only ``spatial_dims`` used to — a
        typo'd level in the others was silently ignored)."""
        from repro.common.errors import MappingError

        spec = matmul(4, 4, 4)
        bad = [
            MapspaceConstraints(loop_orders={"Bufer": ["m", "k", "n"]}),
            MapspaceConstraints(spatial_dims={"Bufer": ["n"]}),
            MapspaceConstraints(keep={"Bufer": {"A"}}),
            MapspaceConstraints(fixed_factors={"Bufer": {"m": 2}}),
        ]
        for constraints in bad:
            with pytest.raises(MappingError, match="Bufer"):
                Mapper(spec, arch, constraints)

    def test_unknown_dims_rejected_in_orders_and_pins(self, arch):
        """Typo'd dim names in loop orders and pinned factors raise
        too — they would otherwise be looked up with `.get` and never
        enforced (matching the existing spatial_dims behaviour)."""
        from repro.common.errors import MappingError

        spec = matmul(4, 4, 4)
        bad = [
            MapspaceConstraints(loop_orders={"Buffer": ["M", "k", "n"]}),
            MapspaceConstraints(fixed_factors={"Buffer": {"q": 2}}),
        ]
        for constraints in bad:
            with pytest.raises(MappingError, match="unknown dim"):
                Mapper(spec, arch, constraints)

    def test_known_levels_accepted(self, arch):
        constraints = MapspaceConstraints(
            loop_orders={"Buffer": ["m", "k", "n"]},
            spatial_dims={"Buffer": ["n"]},
            keep={"Buffer": {"A", "Z"}},
            fixed_factors={"DRAM": {"m": 2}},
        )
        Mapper(matmul(4, 4, 4), arch, constraints)

    def test_constraints_cache_key_canonical(self):
        a = MapspaceConstraints(
            loop_orders={"Buffer": ["m", "k"]},
            keep={"Buffer": {"A", "Z"}, "DRAM": None},
            fixed_factors={"Buffer": {"m": 4, "k": 2}},
        )
        b = MapspaceConstraints(
            keep={"DRAM": None, "Buffer": {"Z", "A"}},
            loop_orders={"Buffer": ["m", "k"]},
            fixed_factors={"Buffer": {"k": 2, "m": 4}},
        )
        assert a.cache_key() == b.cache_key()
        assert hash(a.cache_key()) == hash(b.cache_key())
        # Loop *order* is content; a different order is a different key.
        c = MapspaceConstraints(loop_orders={"Buffer": ["k", "m"]})
        d = MapspaceConstraints(loop_orders={"Buffer": ["m", "k"]})
        assert c.cache_key() != d.cache_key()


class TestSizeEstimate:
    def test_positive_and_monotone(self, arch):
        small = Mapper(matmul(2, 2, 2), arch).mapspace_size_estimate()
        large = Mapper(matmul(8, 8, 8), arch).mapspace_size_estimate()
        assert 0 < small < large
