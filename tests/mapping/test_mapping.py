"""Unit tests for mappings and their validation."""

import pytest

from repro import matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.errors import MappingError
from repro.mapping.mapping import (
    LevelMapping,
    Loop,
    Mapping,
    single_level_mapping,
)


@pytest.fixture
def arch():
    return Architecture(
        "a",
        [
            StorageLevel("DRAM", None),
            StorageLevel("Buffer", 4096),
        ],
        ComputeLevel("MAC", instances=4),
    )


@pytest.fixture
def spec():
    return matmul(8, 8, 8)


class TestLoop:
    def test_repr_kinds(self):
        assert "parallel-for" in repr(Loop("m", 2, spatial=True))
        assert repr(Loop("m", 2)).startswith("for")

    def test_rejects_bad_bound(self):
        with pytest.raises(MappingError):
            Loop("m", 0)


class TestLevelMapping:
    def test_spatial_flag_normalised(self):
        lm = LevelMapping("L", [], [Loop("m", 4)])
        assert lm.spatial[0].spatial

    def test_rejects_spatial_in_temporal(self):
        with pytest.raises(MappingError):
            LevelMapping("L", [Loop("m", 4, spatial=True)])

    def test_keeps_default_all(self):
        assert LevelMapping("L").keeps("anything")

    def test_keep_set(self):
        lm = LevelMapping("L", keep={"A"})
        assert lm.keeps("A") and not lm.keeps("B")

    def test_spatial_fanout(self):
        lm = LevelMapping("L", [], [Loop("m", 4), Loop("n", 2)])
        assert lm.spatial_fanout == 8


class TestMappingValidation:
    def test_valid_mapping(self, arch, spec):
        m = Mapping(
            [
                LevelMapping("DRAM", [Loop("m", 2)]),
                LevelMapping(
                    "Buffer",
                    [Loop("m", 4), Loop("k", 8), Loop("n", 4)],
                    [Loop("n", 2)],
                ),
            ]
        )
        m.validate(spec, arch)  # should not raise

    def test_wrong_level_names(self, arch, spec):
        m = Mapping([LevelMapping("DRAM", []), LevelMapping("L1", [])])
        with pytest.raises(MappingError):
            m.validate(spec, arch)

    def test_wrong_factor_product(self, arch, spec):
        m = Mapping(
            [
                LevelMapping("DRAM", []),
                LevelMapping(
                    "Buffer", [Loop("m", 4), Loop("k", 8), Loop("n", 8)]
                ),
            ]
        )
        with pytest.raises(MappingError):
            m.validate(spec, arch)

    def test_unknown_dim(self, arch, spec):
        m = Mapping(
            [
                LevelMapping("DRAM", [Loop("x", 1)]),
                LevelMapping(
                    "Buffer", [Loop("m", 8), Loop("k", 8), Loop("n", 8)]
                ),
            ]
        )
        with pytest.raises(MappingError):
            m.validate(spec, arch)

    def test_excess_spatial_fanout(self, arch, spec):
        m = Mapping(
            [
                LevelMapping("DRAM", []),
                LevelMapping(
                    "Buffer",
                    [Loop("m", 1), Loop("k", 8)],
                    [Loop("n", 8), Loop("m", 8)],  # fanout 64 > 4 MACs
                ),
            ]
        )
        with pytest.raises(MappingError):
            m.validate(spec, arch)

    def test_tensor_kept_nowhere(self, arch, spec):
        m = Mapping(
            [
                LevelMapping("DRAM", [], keep={"A", "Z"}),
                LevelMapping(
                    "Buffer",
                    [Loop("m", 8), Loop("k", 8), Loop("n", 8)],
                    keep={"A", "Z"},
                ),
            ]
        )
        with pytest.raises(MappingError):
            m.validate(spec, arch)

    def test_keep_chain(self, arch, spec):
        m = Mapping(
            [
                LevelMapping("DRAM", []),
                LevelMapping(
                    "Buffer",
                    [Loop("m", 8), Loop("k", 8), Loop("n", 8)],
                    keep={"A", "Z"},
                ),
            ]
        )
        assert m.keep_chain("B") == ["DRAM"]
        assert m.keep_chain("A") == ["DRAM", "Buffer"]


class TestSingleLevelMapping:
    def test_round_trip(self, arch, spec):
        m = single_level_mapping(arch, spec)
        m.validate(spec, arch)
        inner = m.levels[-1]
        assert [l.dim for l in inner.temporal] == ["m", "k", "n"]

    def test_custom_order(self, arch, spec):
        m = single_level_mapping(arch, spec, order=["n", "k", "m"])
        assert [l.dim for l in m.levels[-1].temporal] == ["n", "k", "m"]
