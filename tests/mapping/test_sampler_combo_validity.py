"""Combo-level sample validity vs the ``Mapping.validate`` oracle.

``sample_mappings`` decides structural validity on the drawn factor
combos directly (``_combo_structurally_valid``) so rejected draws never
pay a :class:`Mapping` construction. That shortcut must accept exactly
the draws whose built mapping passes ``validate`` — otherwise the
sampled candidate stream (and with it every seeded search result)
would silently change. These tests replay the sampler against a
validate-backed oracle across architectures and constraint shapes and
require identical streams.
"""

from __future__ import annotations

import pytest

from repro import Workload, conv2d, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.mapping.mapspace import Mapper, MapspaceConstraints

SAMPLES = 40


def _arch2(macs=16) -> Architecture:
    return Architecture(
        "a2",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Buffer", 16 * 1024, component="sram",
                         read_bandwidth=8, write_bandwidth=8),
        ],
        ComputeLevel("MAC", instances=macs),
    )


def _arch3() -> Architecture:
    return Architecture(
        "a3",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Global", 64 * 1024, component="sram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Buffer", 1024, component="sram",
                         read_bandwidth=4, write_bandwidth=4,
                         instances=4),
        ],
        ComputeLevel("MAC", instances=16),
    )


def _einsums():
    return [
        matmul(64, 64, 64),
        conv2d(n=2, k=8, c=8, p=7, q=7, r=3, s=3),
    ]


def _constraint_variants(arch: Architecture, einsum) -> list:
    dims = list(einsum.dims)
    inner = arch.level_names[-1]
    return [
        MapspaceConstraints(),
        MapspaceConstraints(spatial_dims={inner: dims[:2]}),
        MapspaceConstraints(
            spatial_dims={inner: dims[:2]},
            keep={inner: [t.name for t in einsum.tensors]},
        ),
    ]


def _cases():
    cases = []
    for einsum in _einsums():
        for arch_fn in (_arch2, _arch3):
            arch = arch_fn()
            for index, constraints in enumerate(
                _constraint_variants(arch, einsum)
            ):
                cases.append(
                    pytest.param(
                        einsum, arch, constraints,
                        id=f"{einsum.name}-{arch.name}-c{index}",
                    )
                )
    return cases


class _OracleMapper(Mapper):
    """Replaces the combo-level check with the full validate oracle:
    build the mapping, run ``Mapping.validate``. The draw sequence is
    untouched (RNG consumption happens before the check), so the two
    mappers agree iff the combo check accepts exactly validate's set."""

    def _combo_structurally_valid(self, combos) -> bool:
        return self._structurally_valid(self._build_mapping(combos))


@pytest.mark.parametrize("einsum,arch,constraints", _cases())
def test_combo_validity_matches_validate_oracle(einsum, arch, constraints):
    workload = Workload.uniform(einsum, {})
    fast = Mapper(workload.einsum, arch, constraints)
    oracle = _OracleMapper(workload.einsum, arch, constraints)
    fast_stream = list(fast.sample_mappings(SAMPLES, seed=11))
    oracle_stream = list(oracle.sample_mappings(SAMPLES, seed=11))
    assert [m.cache_key() for m in fast_stream] == [
        m.cache_key() for m in oracle_stream
    ]
    # Accepted draws really are valid (not merely oracle-consistent).
    for mapping in fast_stream:
        mapping.validate(workload.einsum, arch)


def test_combo_check_rejections_are_exercised():
    """The equivalence suite is only meaningful if the combo check
    actually rejects draws somewhere: conv2d's seven dimensions against
    three constrained spatial slots and 16 MACs overflow the fanout on
    a healthy fraction of draws — and every rejection must be one the
    validate oracle would also make."""
    einsum = conv2d(n=2, k=8, c=8, p=7, q=7, r=3, s=3)
    arch = _arch2()
    constraints = MapspaceConstraints(
        spatial_dims={"Buffer": ["k", "c", "p"]}
    )
    mapper = Mapper(einsum, arch, constraints)
    rejected = []
    combo_check = mapper._combo_structurally_valid
    validate_check = mapper._structurally_valid

    def counting(combos):
        ok = combo_check(combos)
        if not ok:
            rejected.append(dict(combos))
        return ok

    mapper._combo_structurally_valid = counting
    list(mapper.sample_mappings(SAMPLES, seed=11))
    assert rejected, "scenario produced no combo-level rejections"
    for combos in rejected:
        assert not validate_check(mapper._build_mapping(combos))
