"""Unit tests for the unified content-addressed cache subsystem."""

from __future__ import annotations

import pickle

import pytest

from repro.common.cache import (
    DEFAULT_STAGE_SIZES,
    PERSISTENT_SCHEMA_VERSION,
    AnalysisCache,
    DenseAnalysisCache,
    PersistentCache,
    StageCache,
    global_cache,
    repro_code_hash,
)


class TestStageCache:
    def test_get_put_and_stats(self):
        cache = StageCache(maxsize=4, name="t")
        assert cache.get(("a",)) is None
        cache.put(("a",), 1)
        assert cache.get(("a",)) == 1
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
            "entries": 1,
        }

    def test_get_or_compute_runs_once(self):
        cache = StageCache(maxsize=4)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_lru_eviction(self):
        cache = StageCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'
        cache.put("c", 3)  # evicts 'b'
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            StageCache(maxsize=0)

    def test_export_import_preserves_order_and_values(self):
        cache = StageCache(maxsize=8)
        for i in range(5):
            cache.put(("k", i), i * 10)
        pairs = cache.export_entries(limit=3)
        assert [k for k, _ in pairs] == [("k", 2), ("k", 3), ("k", 4)]
        other = StageCache(maxsize=8)
        assert other.import_entries(pairs) == 3
        assert other.get(("k", 4)) == 40
        # No limit exports everything.
        assert len(cache.export_entries(limit=None)) == 5

    def test_clear_resets_accounting(self):
        cache = StageCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0


class TestAnalysisCache:
    def test_stage_creation_and_defaults(self):
        cache = AnalysisCache()
        sparse = cache.stage("sparse")
        assert sparse.maxsize == DEFAULT_STAGE_SIZES["sparse"]
        assert cache.stage("sparse") is sparse  # same instance
        assert cache.stage("custom").maxsize > 0

    def test_dense_stage_is_specialised(self):
        cache = AnalysisCache()
        assert isinstance(cache.dense, DenseAnalysisCache)
        assert cache.dense is cache.stage("dense")

    def test_stage_size_overrides(self):
        cache = AnalysisCache(stage_sizes={"dense": 2, "sparse": 3})
        assert cache.dense.maxsize == 2
        assert cache.sparse.maxsize == 3

    def test_stats_and_clear_cover_all_stages(self):
        cache = AnalysisCache()
        cache.stage("sparse").put("k", "v")
        cache.stage("sparse").get("k")
        stats = cache.stats()
        assert stats["sparse"]["hits"] == 1
        cache.clear()
        assert cache.stats()["sparse"]["entries"] == 0

    def test_export_import_round_trip(self):
        parent = AnalysisCache()
        parent.stage("sparse").put(("s",), "sparse-value")
        parent.stage("dense").put(("d",), "dense-value")
        state = parent.export_state()
        assert set(state) == {"sparse", "dense"}

        child = AnalysisCache()
        assert child.import_state(state) == 2
        assert child.stage("sparse").get(("s",)) == "sparse-value"
        assert child.stage("dense").get(("d",)) == "dense-value"

    def test_export_skips_empty_stages(self):
        cache = AnalysisCache()
        cache.stage("sparse")  # created but empty
        assert cache.export_state() == {}


class TestPersistentCache:
    STATE = {"sparse": [(("k", 1), "v1"), (("k", 2), "v2")]}

    def _store(self, tmp_path, **kwargs) -> PersistentCache:
        kwargs.setdefault("namespace", "test-ns")
        return PersistentCache(root=tmp_path, **kwargs)

    def test_round_trip(self, tmp_path):
        store = self._store(tmp_path)
        path = store.store("run-a", self.STATE)
        assert path.exists()
        assert store.load("run-a") == self.STATE
        # A second PersistentCache over the same root sees it too (the
        # cross-process case).
        assert self._store(tmp_path).load("run-a") == self.STATE

    def test_missing_key_is_none(self, tmp_path):
        assert self._store(tmp_path).load("never-stored") is None

    def test_store_layout_is_versioned_and_keyed(self, tmp_path):
        store = self._store(tmp_path)
        path = store.path_for("run-a")
        assert path.parent == (
            tmp_path / f"v{PERSISTENT_SCHEMA_VERSION}" / "test-ns"
        )
        assert path == store.path_for("run-a")  # deterministic
        assert path != store.path_for("run-b")

    def test_transient_read_error_is_a_miss_not_a_discard(
        self, tmp_path, monkeypatch
    ):
        store = self._store(tmp_path)
        path = store.store("run-a", self.STATE)
        real_open = open

        def flaky_open(file, *args, **kwargs):
            if str(file) == str(path):
                raise PermissionError(13, "transient denial", str(file))
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr("builtins.open", flaky_open)
        assert store.load("run-a") is None  # miss...
        monkeypatch.undo()
        assert path.exists()  # ...but the snapshot survives
        assert store.load("run-a") == self.STATE

    def test_corrupted_file_is_discarded(self, tmp_path):
        store = self._store(tmp_path)
        path = store.store("run-a", self.STATE)
        path.write_bytes(b"\x80garbage not a pickle")
        assert store.load("run-a") is None
        assert not path.exists()  # removed so it cannot fail again
        # The store recovers on the next spill.
        store.store("run-a", self.STATE)
        assert store.load("run-a") == self.STATE

    def test_truncated_pickle_is_discarded(self, tmp_path):
        store = self._store(tmp_path)
        path = store.store("run-a", self.STATE)
        path.write_bytes(path.read_bytes()[:-7])
        assert store.load("run-a") is None
        assert not path.exists()

    def test_schema_bump_invalidates(self, tmp_path):
        old = self._store(tmp_path)
        old.store("run-a", self.STATE)
        new = self._store(tmp_path, version=PERSISTENT_SCHEMA_VERSION + 1)
        # New schema reads nothing from the old version directory...
        assert new.load("run-a") is None
        # ...and prune sweeps the stale directory away.
        assert new.prune_stale_versions() == 1
        assert not old.store_dir.exists()

    def test_payload_header_mismatch_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        path = store.store("run-a", self.STATE)
        payload = pickle.loads(path.read_bytes())
        payload["namespace"] = "someone-else"
        path.write_bytes(pickle.dumps(payload))
        assert store.load("run-a") is None

    def test_namespace_separates_code_versions(self, tmp_path):
        a = self._store(tmp_path, namespace="code-a")
        b = self._store(tmp_path, namespace="code-b")
        a.store("run", self.STATE)
        assert b.load("run") is None
        assert a.load("run") == self.STATE

    def test_invalidate_one_key_and_whole_namespace(self, tmp_path):
        store = self._store(tmp_path)
        store.store("run-a", self.STATE)
        store.store("run-b", self.STATE)
        store.invalidate("run-a")
        assert store.load("run-a") is None
        assert store.load("run-b") == self.STATE
        store.invalidate()
        assert store.load("run-b") is None

    def test_overwrite_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        store = self._store(tmp_path)
        store.store("run-a", self.STATE)
        newer = {"sparse": [(("k", 3), "v3")]}
        store.store("run-a", newer)
        assert store.load("run-a") == newer
        leftovers = [
            p for p in store.store_dir.iterdir() if p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_default_namespace_tracks_code_hash(self, tmp_path):
        store = PersistentCache(root=tmp_path)
        assert repro_code_hash() in store.namespace
        assert repro_code_hash() == repro_code_hash()  # memoised, stable

    def test_is_picklable_for_worker_initializers(self, tmp_path):
        store = self._store(tmp_path)
        store.store("run-a", self.STATE)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.load("run-a") == self.STATE


class TestGlobalCache:
    def test_singleton_hosts_tile_format_stage(self):
        a = global_cache()
        b = global_cache()
        assert a is b
        stage = a.stage("tile-format")
        assert stage.maxsize == DEFAULT_STAGE_SIZES["tile-format"]

    def test_tile_format_analyses_land_in_global_stage(self):
        from repro.sparse.density import UniformDensity
        from repro.sparse.format_analyzer import (
            analyze_tile_format,
            clear_tile_format_cache,
        )
        from repro.sparse.formats import (
            CoordinatePayload,
            FormatRank,
            FormatSpec,
        )

        clear_tile_format_cache()
        fmt = FormatSpec([FormatRank(CoordinatePayload())])
        model = UniformDensity(0.25, 64)
        first = analyze_tile_format(fmt, (8,), model)
        second = analyze_tile_format(fmt, (8,), model)
        assert first is second  # memoised, not recomputed
        stage = global_cache().stage("tile-format")
        assert len(stage) >= 1
        assert stage.hits >= 1
