"""Unit tests for the unified content-addressed cache subsystem."""

from __future__ import annotations

import pytest

from repro.common.cache import (
    DEFAULT_STAGE_SIZES,
    AnalysisCache,
    DenseAnalysisCache,
    StageCache,
    global_cache,
)


class TestStageCache:
    def test_get_put_and_stats(self):
        cache = StageCache(maxsize=4, name="t")
        assert cache.get(("a",)) is None
        cache.put(("a",), 1)
        assert cache.get(("a",)) == 1
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
            "entries": 1,
        }

    def test_get_or_compute_runs_once(self):
        cache = StageCache(maxsize=4)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_lru_eviction(self):
        cache = StageCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'
        cache.put("c", 3)  # evicts 'b'
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            StageCache(maxsize=0)

    def test_export_import_preserves_order_and_values(self):
        cache = StageCache(maxsize=8)
        for i in range(5):
            cache.put(("k", i), i * 10)
        pairs = cache.export_entries(limit=3)
        assert [k for k, _ in pairs] == [("k", 2), ("k", 3), ("k", 4)]
        other = StageCache(maxsize=8)
        assert other.import_entries(pairs) == 3
        assert other.get(("k", 4)) == 40
        # No limit exports everything.
        assert len(cache.export_entries(limit=None)) == 5

    def test_clear_resets_accounting(self):
        cache = StageCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0


class TestAnalysisCache:
    def test_stage_creation_and_defaults(self):
        cache = AnalysisCache()
        sparse = cache.stage("sparse")
        assert sparse.maxsize == DEFAULT_STAGE_SIZES["sparse"]
        assert cache.stage("sparse") is sparse  # same instance
        assert cache.stage("custom").maxsize > 0

    def test_dense_stage_is_specialised(self):
        cache = AnalysisCache()
        assert isinstance(cache.dense, DenseAnalysisCache)
        assert cache.dense is cache.stage("dense")

    def test_stage_size_overrides(self):
        cache = AnalysisCache(stage_sizes={"dense": 2, "sparse": 3})
        assert cache.dense.maxsize == 2
        assert cache.sparse.maxsize == 3

    def test_stats_and_clear_cover_all_stages(self):
        cache = AnalysisCache()
        cache.stage("sparse").put("k", "v")
        cache.stage("sparse").get("k")
        stats = cache.stats()
        assert stats["sparse"]["hits"] == 1
        cache.clear()
        assert cache.stats()["sparse"]["entries"] == 0

    def test_export_import_round_trip(self):
        parent = AnalysisCache()
        parent.stage("sparse").put(("s",), "sparse-value")
        parent.stage("dense").put(("d",), "dense-value")
        state = parent.export_state()
        assert set(state) == {"sparse", "dense"}

        child = AnalysisCache()
        assert child.import_state(state) == 2
        assert child.stage("sparse").get(("s",)) == "sparse-value"
        assert child.stage("dense").get(("d",)) == "dense-value"

    def test_export_skips_empty_stages(self):
        cache = AnalysisCache()
        cache.stage("sparse")  # created but empty
        assert cache.export_state() == {}


class TestGlobalCache:
    def test_singleton_hosts_tile_format_stage(self):
        a = global_cache()
        b = global_cache()
        assert a is b
        stage = a.stage("tile-format")
        assert stage.maxsize == DEFAULT_STAGE_SIZES["tile-format"]

    def test_tile_format_analyses_land_in_global_stage(self):
        from repro.sparse.density import UniformDensity
        from repro.sparse.format_analyzer import (
            analyze_tile_format,
            clear_tile_format_cache,
        )
        from repro.sparse.formats import (
            CoordinatePayload,
            FormatRank,
            FormatSpec,
        )

        clear_tile_format_cache()
        fmt = FormatSpec([FormatRank(CoordinatePayload())])
        model = UniformDensity(0.25, 64)
        first = analyze_tile_format(fmt, (8,), model)
        second = analyze_tile_format(fmt, (8,), model)
        assert first is second  # memoised, not recomputed
        stage = global_cache().stage("tile-format")
        assert len(stage) >= 1
        assert stage.hits >= 1
