"""Concurrent-writer semantics of the persistent tier.

The contract (documented in ``docs/caching.md``): many processes may
spill to the same key at once; the winner is simply the last writer,
and a reader racing the writers always loads a *complete* snapshot
from one of them — never a torn or interleaved file. The mechanism is
the write path's tempfile + fsync + ``os.replace`` (atomic rename on
POSIX), so no locking is needed anywhere.
"""

from __future__ import annotations

import multiprocessing
import pickle

from repro.common.cache import PersistentCache

KEY = "stress-key"
WRITERS = 4
ROUNDS = 25


def _payload(writer_id: int, round_no: int) -> dict:
    # Unmistakably attributable to one (writer, round) pair, and large
    # enough that a torn write could not accidentally parse: a reader
    # either sees all of one writer's snapshot or none of it.
    blob = [(f"w{writer_id}-r{round_no}-{i}", i * writer_id) for i in range(2000)]
    return {"dense": blob, "writer": [(writer_id, round_no)]}


def _writer(root: str, writer_id: int, barrier) -> None:
    store = PersistentCache(root=root, namespace="stress")
    barrier.wait()
    for round_no in range(ROUNDS):
        store.store(KEY, _payload(writer_id, round_no))


def _reader(root: str, barrier, failures) -> None:
    store = PersistentCache(root=root, namespace="stress")
    barrier.wait()
    for _ in range(ROUNDS * 2):
        stages = store.load(KEY)
        if stages is None:
            continue  # not yet written; never torn (load discards junk)
        ((writer_id, round_no),) = stages["writer"]
        if stages != _payload(writer_id, round_no):
            failures.put(
                f"torn read: writer {writer_id} round {round_no} "
                "loaded with mismatched stage data"
            )
            return


class TestConcurrentWriters:
    def test_last_writer_wins_no_torn_reads(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        failures = ctx.Queue()
        barrier = ctx.Barrier(WRITERS + 1)
        writers = [
            ctx.Process(target=_writer, args=(str(tmp_path), i + 1, barrier))
            for i in range(WRITERS)
        ]
        reader = ctx.Process(
            target=_reader, args=(str(tmp_path), barrier, failures)
        )
        for proc in writers + [reader]:
            proc.start()
        for proc in writers + [reader]:
            proc.join(timeout=120)
            assert proc.exitcode == 0, f"{proc} died: exit {proc.exitcode}"
        assert failures.empty(), failures.get()

        # Quiesced store: the surviving snapshot is one writer's *last*
        # round, complete — last-writer-wins, nothing interleaved.
        store = PersistentCache(root=str(tmp_path), namespace="stress")
        stages = store.load(KEY)
        assert stages is not None
        ((writer_id, round_no),) = stages["writer"]
        assert round_no == ROUNDS - 1
        assert stages == _payload(writer_id, round_no)

    def test_no_tempfile_litter_after_stress(self, tmp_path):
        store = PersistentCache(root=str(tmp_path), namespace="stress")
        for round_no in range(5):
            store.store(KEY, _payload(1, round_no))
        leftovers = [
            p for p in store.store_dir.iterdir() if p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_corrupt_file_is_a_miss_not_a_crash(self, tmp_path):
        # A half-written file from a crashed process (pre-rename this
        # cannot happen, but disks lie) must read as a miss and be
        # swept so the store self-heals.
        store = PersistentCache(root=str(tmp_path), namespace="stress")
        store.store(KEY, _payload(1, 0))
        path = store.path_for(KEY)
        complete = path.read_bytes()
        path.write_bytes(complete[: len(complete) // 2])
        assert store.load(KEY) is None
        assert not path.exists(), "corrupt snapshots are discarded"


class TestSnapshotIsolation:
    def test_reader_never_sees_mixed_namespaces(self, tmp_path):
        # Same key, different namespace -> different file; a namespace
        # mismatch inside a file is rejected wholesale (no partial use).
        a = PersistentCache(root=str(tmp_path), namespace="ns-a")
        b = PersistentCache(root=str(tmp_path), namespace="ns-b")
        a.store(KEY, _payload(1, 0))
        assert b.load(KEY) is None
        # Forge a cross-namespace file: reject, don't mix.
        forged = b.path_for(KEY)
        forged.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": b.version,
            "namespace": "ns-a",
            "key": KEY,
            "stages": {"dense": []},
        }
        forged.write_bytes(pickle.dumps(payload))
        assert b.load(KEY) is None
