"""Unit tests for repro.common.util."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.util import (
    bits_to_words,
    cached_divisors,
    ceil_div,
    clamp,
    divisors,
    factorization_count,
    factorizations,
    geometric_mean,
    prod,
)


class TestProd:
    def test_empty(self):
        assert prod([]) == 1

    def test_ints(self):
        assert prod([2, 3, 4]) == 24

    def test_floats(self):
        assert prod([0.5, 4.0]) == 2.0


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-1, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(2, 0.0, 1.0) == 1.0

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            clamp(0, 1, 0)


class TestDivisors:
    def test_small(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_one(self):
        assert divisors(1) == [1]

    def test_prime(self):
        assert divisors(13) == [1, 13]

    def test_square(self):
        assert divisors(16) == [1, 2, 4, 8, 16]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            divisors(0)

    @given(st.integers(min_value=1, max_value=3000))
    def test_every_divisor_divides(self, n):
        for d in divisors(n):
            assert n % d == 0

    def test_cached_variant_matches(self):
        for n in (1, 2, 12, 97, 360):
            assert list(cached_divisors(n)) == divisors(n)

    def test_returns_fresh_list(self):
        first = divisors(24)
        first.append(999)
        assert 999 not in divisors(24)


class TestFactorizations:
    def test_single_part(self):
        assert list(factorizations(12, 1)) == [(12,)]

    def test_two_parts_cover_all(self):
        combos = set(factorizations(12, 2))
        assert combos == {
            (1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)
        }

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            list(factorizations(4, 0))

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=4),
    )
    def test_products_match(self, n, parts):
        for combo in factorizations(n, parts):
            assert prod(combo) == n
            assert len(combo) == parts


class TestFactorizationCount:
    @given(
        st.integers(min_value=1, max_value=128),
        st.integers(min_value=1, max_value=4),
    )
    def test_closed_form_matches_enumeration(self, n, parts):
        assert factorization_count(n, parts) == sum(
            1 for _ in factorizations(n, parts)
        )

    def test_large_input_is_cheap(self):
        # 2^20 over 8 slots: C(27, 7) ordered splits, no enumeration.
        assert factorization_count(2**20, 8) == math.comb(27, 7)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            factorization_count(0, 2)
        with pytest.raises(ValueError):
            factorization_count(4, 0)


class TestBitsToWords:
    def test_exact(self):
        assert bits_to_words(32, 16) == 2.0

    def test_fractional(self):
        assert bits_to_words(8, 16) == 0.5

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            bits_to_words(8, 0)


class TestGeometricMean:
    def test_pair(self):
        assert math.isclose(geometric_mean([1.0, 4.0]), 2.0)

    def test_identity(self):
        assert math.isclose(geometric_mean([7.0]), 7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
