"""Objectives over the serve wire: named specs, frontier projection,
and the pickled-callable trust boundary.

The acceptance contract: a remote ``search`` with ``objective="energy"``
returns bit-identical results (including the frontier section) to an
in-process :class:`Session`, with no pickle on the wire; TCP clients
sending a pickled objective callable are rejected before anything is
unpickled, while unix-socket peers (same trust domain as the daemon)
keep the legacy escape hatch.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

import repro.api.jobs as jobs_module
from repro.api import SearchJob, Session, connect
from repro.common.errors import SpecError
from repro.io.yaml_spec import load_design
from repro.serve.server import ReproServer, ServeConfig
from tests.io.test_yaml_spec import FULL_SPEC

BUDGET = 8


def energy_callable(result) -> float:
    """Module-level (hence picklable) legacy objective."""
    return result.energy_pj


class _Daemon:
    """One in-process daemon on a background event-loop thread."""

    def __init__(self, config: ServeConfig, **session_kwargs):
        self.server = ReproServer(config, **session_kwargs)
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(timeout=15), "daemon failed to start"

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self.server.serve_forever()

        asyncio.run(main())

    @property
    def address(self) -> str:
        return self.server.addresses[0]

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=15)


@pytest.fixture
def unix_daemon(tmp_path):
    d = _Daemon(
        ServeConfig(
            port=None,
            unix_path=str(tmp_path / "serve.sock"),
            batch_window_ms=5.0,
            batch_max=8,
            workers=2,
            queue_depth=8,
        ),
        search_budget=BUDGET,
    )
    yield d
    d.stop()


@pytest.fixture
def tcp_daemon():
    d = _Daemon(
        ServeConfig(
            port=0,
            unix_path=None,
            batch_window_ms=5.0,
            batch_max=8,
            workers=2,
            queue_depth=8,
        ),
        search_budget=BUDGET,
    )
    yield d
    d.stop()


class TestNamedObjectivesOnTheWire:
    def test_energy_search_identical_to_in_process(self, unix_daemon):
        design, workload = load_design(FULL_SPEC)
        with connect(unix_daemon.address) as remote:
            got = remote.search(design, workload, objective="energy")
        with Session(search_budget=BUDGET) as local:
            expected = local.search(
                SearchJob(design, workload, objective="energy")
            )
        assert got.to_dict() == expected.to_dict()
        assert got.objective == "energy"
        assert got.frontier is not None

    def test_multi_objective_frontier_identical(self, unix_daemon):
        design, workload = load_design(FULL_SPEC)
        objective = ("energy", "cycles", "slack")
        with connect(unix_daemon.address) as remote:
            got = remote.search(design, workload, objective=objective)
        with Session(search_budget=BUDGET) as local:
            expected = local.search(
                SearchJob(design, workload, objective=objective)
            )
        assert got.frontier.to_dict() == expected.frontier.to_dict()
        assert got.to_dict() == expected.to_dict()

    def test_frontier_projection(self, unix_daemon):
        design, workload = load_design(FULL_SPEC)
        job = SearchJob(design, workload, objective="energy")
        with connect(unix_daemon.address) as remote:
            full = remote.search(job)
            projected = remote.submit(job, fields=["frontier"]).result()
        assert set(projected) == {"schema", "kind", "frontier"}
        assert projected["frontier"] == full.to_dict()["frontier"]

    def test_named_objective_works_over_tcp(self, tcp_daemon):
        design, workload = load_design(FULL_SPEC)
        with connect(tcp_daemon.address) as remote:
            got = remote.search(design, workload, objective="energy")
        with Session(search_budget=BUDGET) as local:
            expected = local.search(
                SearchJob(design, workload, objective="energy")
            )
        assert got.to_dict() == expected.to_dict()

    def test_server_stats_attribute_objectives(self, unix_daemon):
        design, workload = load_design(FULL_SPEC)
        with connect(unix_daemon.address) as remote:
            remote.search(design, workload, objective="energy")
            remote.search(design, workload)
            stats = remote.server_stats()
        assert stats["search_jobs"] == 2
        assert stats["search_objectives"] == {"energy": 1, "edp": 1}


@pytest.fixture
def fresh_deprecation_flag():
    """The wire-callable warning fires once per process; rearm it so
    ``pytest.warns`` sees it regardless of test order."""
    jobs_module._WIRE_CALLABLE_WARNED[0] = False
    yield
    jobs_module._WIRE_CALLABLE_WARNED[0] = False


class TestPickledObjectiveTrustBoundary:
    def test_tcp_rejects_pickled_callable(self, tcp_daemon, fresh_deprecation_flag):
        design, workload = load_design(FULL_SPEC)
        with connect(tcp_daemon.address) as remote:
            with pytest.warns(DeprecationWarning):
                with pytest.raises(SpecError, match="not accepted over TCP"):
                    remote.search(
                        design, workload, objective=energy_callable
                    )
            # The connection survives the rejection.
            assert remote.ping()["protocol"] == 1

    def test_unix_socket_still_accepts_callable(self, unix_daemon, fresh_deprecation_flag):
        design, workload = load_design(FULL_SPEC)
        with connect(unix_daemon.address) as remote:
            with pytest.warns(DeprecationWarning):
                got = remote.search(
                    design, workload, objective=energy_callable
                )
        with Session(search_budget=BUDGET) as local:
            expected = local.search(
                SearchJob(design, workload, objective="energy")
            )
        # Same metric, so the same winner — but the wire spec records
        # the callable's provenance rather than a name.
        assert got.best.to_dict() == expected.best.to_dict()
        assert got.objective == {
            "callable": f"{__name__}:energy_callable"
        }
