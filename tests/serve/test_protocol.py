"""Wire-protocol unit tests: framing, error envelopes, result dispatch.

The error-envelope contract is the load-bearing piece: every
:class:`ReproError` subclass must cross the wire and come back as the
*same type with the same message*, so remote handles are
indistinguishable from in-process ones.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import (
    MappingError,
    OverloadedError,
    ReproError,
    SpecError,
    ValidationError,
)
from repro.micro.validity import LevelUsage, overflow_error
from repro.serve.protocol import (
    ERROR_KINDS,
    decode_line,
    encode_line,
    error_from_envelope,
    error_to_envelope,
    result_from_dict,
)


class TestFraming:
    def test_encode_decode_round_trip(self):
        payload = {"id": 7, "job": {"kind": "evaluate-job"}}
        line = encode_line(payload)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1], "one frame per line"
        assert decode_line(line) == payload

    def test_decode_rejects_non_json(self):
        with pytest.raises(SpecError, match="malformed protocol line"):
            decode_line(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(SpecError, match="JSON objects"):
            decode_line(b"[1, 2, 3]\n")


class TestErrorEnvelopes:
    @pytest.mark.parametrize("kind", sorted(ERROR_KINDS))
    def test_every_registered_kind_round_trips(self, kind):
        cls = ERROR_KINDS[kind]
        exc = cls(f"a {kind} failure: detail 42")
        envelope = error_to_envelope(exc)
        assert envelope == {"kind": kind, "message": str(exc)}
        rebuilt = error_from_envelope(json.loads(json.dumps(envelope)))
        assert type(rebuilt) is cls
        assert str(rebuilt) == str(exc)

    def test_capacity_overflow_report_survives(self):
        # The whole usage report lives in the message, so the envelope
        # reproduces the in-process error text exactly.
        report = LevelUsage(
            level="Buffer",
            capacity_words=4.0,
            used_words=144.0,
            per_tensor={"A": 80.0, "B": 64.0},
        )
        exc = overflow_error(report)
        rebuilt = error_from_envelope(error_to_envelope(exc))
        assert type(rebuilt) is ValidationError
        assert str(rebuilt) == str(exc)
        assert "Buffer" in str(rebuilt) and "144.0" in str(rebuilt)

    def test_unregistered_subclass_maps_to_nearest_base(self):
        class CustomMappingError(MappingError):
            pass

        envelope = error_to_envelope(CustomMappingError("nested failure"))
        assert envelope["kind"] == "mapping"
        assert type(error_from_envelope(envelope)) is MappingError

    def test_non_repro_error_becomes_internal_without_traceback(self):
        envelope = error_to_envelope(RuntimeError("engine exploded"))
        assert envelope == {
            "kind": "internal",
            "message": "RuntimeError: engine exploded",
        }
        assert "Traceback" not in envelope["message"]
        assert type(error_from_envelope(envelope)) is ReproError

    def test_overloaded_is_a_registered_kind(self):
        envelope = error_to_envelope(OverloadedError("queue full"))
        assert envelope["kind"] == "overloaded"
        assert isinstance(error_from_envelope(envelope), OverloadedError)

    def test_unknown_kind_degrades_to_base(self):
        rebuilt = error_from_envelope({"kind": "from-the-future", "message": "x"})
        assert type(rebuilt) is ReproError


class TestResultDispatch:
    def test_unknown_result_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown result kind"):
            result_from_dict({"schema": 1, "kind": "hologram"})

    def test_non_dict_rejected(self):
        with pytest.raises(SpecError, match="must be a dict"):
            result_from_dict([1, 2])
