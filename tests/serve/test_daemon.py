"""End-to-end daemon tests: one in-process server, real sockets.

The server runs its asyncio loop on a background thread and listens on
a unix socket in the test's tmp dir; clients are real
:class:`RemoteSession` connections. The core contract under test:
anything a client does remotely behaves *identically* — bit-identical
results, same exception types and messages — to doing it on an
in-process :class:`Session`.
"""

from __future__ import annotations

import asyncio
import threading

import pytest
import yaml

from repro import Workload, matmul
from repro.api import EvaluateJob, NetworkJob, SearchJob, Session, connect
from repro.common.errors import (
    MappingError,
    OverloadedError,
    SpecError,
    ValidationError,
)
from repro.io.yaml_spec import load_design
from repro.serve.server import ReproServer, ServeConfig
from repro.workload.nets import alexnet
from tests.io.test_yaml_spec import FULL_SPEC


def _overflow_spec() -> dict:
    spec = yaml.safe_load(FULL_SPEC)
    spec["arch"]["storage"][1]["capacity_words"] = 4
    return spec


def uniform_densities(layer) -> dict:
    return {"I": 0.5, "W": 0.4}


class _Daemon:
    """One in-process daemon on a background event-loop thread."""

    def __init__(self, config: ServeConfig, **session_kwargs):
        self.server = ReproServer(config, **session_kwargs)
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(timeout=15), "daemon failed to start"

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self.server.serve_forever()

        asyncio.run(main())

    @property
    def address(self) -> str:
        return self.server.addresses[0]

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=15)


@pytest.fixture
def daemon(tmp_path):
    d = _Daemon(
        ServeConfig(
            port=None,
            unix_path=str(tmp_path / "serve.sock"),
            batch_window_ms=5.0,
            batch_max=8,
            workers=2,
            queue_depth=8,
        ),
        search_budget=8,
    )
    yield d
    d.stop()


@pytest.fixture
def remote(daemon):
    session = connect(daemon.address)
    yield session
    session.close()


class TestBasics:
    def test_ping(self, remote, daemon):
        info = remote.ping(timeout=10)
        assert info["protocol"] == 1
        assert info["addresses"] == daemon.server.addresses

    def test_evaluate_bit_identical_to_in_process(self, remote):
        design, workload = load_design(FULL_SPEC)
        remote_result = remote.evaluate(design, workload)
        with Session() as local:
            expected = local.evaluate(design, workload)
        assert remote_result.to_dict() == expected.to_dict()

    def test_spec_forms_accepted(self, remote):
        # The client shares the Session's coercion rules, so every
        # spec form works remotely too.
        a = remote.evaluate(FULL_SPEC)
        b = remote.evaluate(yaml.safe_load(FULL_SPEC))
        assert a.to_dict() == b.to_dict()

    def test_search_identical_to_in_process(self, remote):
        design, workload = load_design(FULL_SPEC)
        remote_result = remote.search(SearchJob(design, workload))
        with Session(search_budget=8) as local:
            expected = local.search(SearchJob(design, workload))
        assert remote_result.to_dict() == expected.to_dict()

    def test_network_identical_to_in_process(self, tmp_path):
        from repro.designs import eyeriss

        d = _Daemon(
            ServeConfig(port=None, unix_path=str(tmp_path / "net.sock")),
            check_capacity=False,
        )
        try:
            design = eyeriss.eyeriss_design()
            layers = alexnet()[:2]
            with connect(d.address) as session:
                remote_result = session.evaluate_network(
                    design, layers, uniform_densities
                )
            with Session(check_capacity=False) as local:
                expected = local.evaluate_network(
                    design, layers, uniform_densities
                )
            assert remote_result.to_dict() == expected.to_dict()
        finally:
            d.stop()

    def test_fused_identical_to_in_process(self, tmp_path):
        from dataclasses import replace

        from repro.api import FusedMapping
        from repro.designs import toy
        from repro.designs.common import generic_einsum_mapping
        from repro.workload.nets import attention

        d = _Daemon(
            ServeConfig(port=None, unix_path=str(tmp_path / "fused.sock")),
            check_capacity=False,
        )
        try:
            design = replace(
                toy.dense_design(),
                mapping=None,
                constraints=None,
                mapping_factory=generic_einsum_mapping,
            )
            graph = attention(seq=32, d_model=64, heads=2)
            fused = FusedMapping(fuse_at="Buffer")
            with connect(d.address) as session:
                remote_result = session.evaluate_fused(
                    design, graph, fused=fused
                )
            with Session(check_capacity=False) as local:
                expected = local.evaluate_fused(design, graph, fused=fused)
            assert remote_result.to_dict() == expected.to_dict()
            assert remote_result.intermediate_backing_words == 0
        finally:
            d.stop()


class TestMicroBatching:
    def test_concurrent_clients_batch_and_match(self, daemon):
        design, workload = load_design(FULL_SPEC)
        with Session() as local:
            expected = local.evaluate(design, workload).to_dict()
        results = [None] * 4
        errors = []

        def client(i):
            try:
                with connect(daemon.address) as session:
                    handles = session.submit_many(
                        [EvaluateJob(design, workload) for _ in range(3)]
                    )
                    results[i] = [h.result(timeout=60).to_dict() for h in handles]
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90)
        assert not errors, errors
        for batch in results:
            assert batch is not None
            assert all(r == expected for r in batch)

    def test_batch_max_1_still_correct(self, tmp_path):
        # --batch-max 1 disables cross-client batching; results must
        # not change, only throughput.
        d = _Daemon(
            ServeConfig(
                port=None,
                unix_path=str(tmp_path / "nobatch.sock"),
                batch_max=1,
            )
        )
        try:
            design, workload = load_design(FULL_SPEC)
            with connect(d.address) as session:
                handles = session.submit_many(
                    [EvaluateJob(design, workload) for _ in range(4)]
                )
                dicts = [h.result(timeout=60).to_dict() for h in handles]
            with Session() as local:
                expected = local.evaluate(design, workload).to_dict()
            assert all(r == expected for r in dicts)
        finally:
            d.stop()

    def test_cache_hits_attributed_to_client(self, remote):
        design, workload = load_design(FULL_SPEC)
        handles = remote.submit_many(
            [EvaluateJob(design, workload) for _ in range(6)]
        )
        for handle in handles:
            handle.result(timeout=60)
        stats = remote.stats(timeout=10)
        assert stats["jobs"] == 6
        assert stats["cache_hits"] > 0, "duplicate jobs must hit the cache"
        assert stats["bytes_in"] > 0 and stats["bytes_out"] > 0


class TestErrorRoundTrips:
    """Satellite: every ReproError subclass crosses the wire with
    ``exception()``/``result()`` behaving identically to in-process."""

    def _compare(self, job, remote, **session_kwargs):
        with Session(**session_kwargs) as local:
            local_exc = local.submit(job).exception()
        remote_exc = remote.submit(job).exception(timeout=60)
        assert type(remote_exc) is type(local_exc)
        assert str(remote_exc) == str(local_exc)
        return remote_exc

    def test_validation_error_capacity_overflow(self, remote):
        design, workload = load_design(_overflow_spec())
        exc = self._compare(EvaluateJob(design, workload), remote)
        assert isinstance(exc, ValidationError)
        assert "overflows" in str(exc), "the usage report survives the wire"

    def test_mapping_error(self, remote):
        design, _ = load_design(FULL_SPEC)
        mismatched = Workload.uniform(matmul(8, 8, 8), {"A": 0.5})
        exc = self._compare(EvaluateJob(design, mismatched), remote)
        assert isinstance(exc, MappingError)

    def test_spec_error(self, remote):
        design, _ = load_design(FULL_SPEC)
        job = NetworkJob(design, alexnet()[:1], densities_for=None)
        exc = self._compare(job, remote)
        assert isinstance(exc, SpecError)

    def test_result_reraises_like_in_process(self, remote):
        design, workload = load_design(_overflow_spec())
        handle = remote.submit(EvaluateJob(design, workload))
        with pytest.raises(ValidationError, match="overflows"):
            handle.result(timeout=60)
        assert handle.done()


class TestAdmissionControl:
    def test_overload_sheds_with_explicit_envelope(self, tmp_path):
        d = _Daemon(
            ServeConfig(
                port=None,
                unix_path=str(tmp_path / "tiny.sock"),
                workers=1,
                queue_depth=1,
            ),
            search_budget=16,
        )
        try:
            design, workload = load_design(FULL_SPEC)
            with connect(d.address) as session:
                handles = [
                    session.submit(SearchJob(design, workload))
                    for _ in range(8)
                ]
                outcomes = [h.exception(timeout=120) for h in handles]
            shed = [e for e in outcomes if isinstance(e, OverloadedError)]
            ran = [e for e in outcomes if e is None]
            assert shed, "a full queue must shed with OverloadedError"
            assert ran, "admitted jobs must still complete"
            assert "retry" in str(shed[0])
        finally:
            d.stop()


class TestReconnect:
    def test_dropped_connection_retries_idempotent_jobs(self, remote):
        design, workload = load_design(FULL_SPEC)
        handle = remote.submit(EvaluateJob(design, workload))
        # Sever the transport under the client; the wait must
        # reconnect and resend the in-flight request once.
        remote._sock.shutdown(2)
        result = handle.result(timeout=60)
        with Session() as local:
            expected = local.evaluate(design, workload)
        assert result.to_dict() == expected.to_dict()

    def test_close_resolves_inflight_handles(self, daemon):
        session = connect(daemon.address)
        design, workload = load_design(FULL_SPEC)
        handle = session.submit(EvaluateJob(design, workload))
        session.close()
        exc = handle.exception()
        assert exc is not None and "closed" in str(exc)
        with pytest.raises(SpecError, match="closed"):
            session.submit(EvaluateJob(design, workload))


class TestPayloadInterning:
    """Repeated design/workload payloads cross the wire once per
    connection; later jobs carry content-digest ref stubs."""

    def test_refs_replace_repeated_payloads(self, remote):
        design, workload = load_design(FULL_SPEC)
        first = remote._job_wire(EvaluateJob(design, workload))
        second = remote._job_wire(EvaluateJob(design, workload))
        assert first["design"]["encoding"] == "pickle"
        assert "ref" in first["design"]
        assert second["design"] == {
            "encoding": "ref", "ref": first["design"]["ref"]
        }
        assert second["workload"]["encoding"] == "ref"

    def test_interned_jobs_bit_identical(self, remote):
        design, workload = load_design(FULL_SPEC)
        handles = remote.submit_many(
            [EvaluateJob(design, workload) for _ in range(3)]
        )
        dicts = [h.result(timeout=60).to_dict() for h in handles]
        with Session() as local:
            expected = local.evaluate(design, workload).to_dict()
        assert all(d == expected for d in dicts)

    def test_dangling_ref_is_a_spec_error(self, remote):
        design, workload = load_design(FULL_SPEC)
        # Mark the payloads as already sent without ever sending them:
        # the server must reject the stub, not crash or hang.
        remote._pack_interned(design)
        remote._pack_interned(workload)
        exc = remote.submit(EvaluateJob(design, workload)).exception(
            timeout=60
        )
        assert isinstance(exc, SpecError)
        assert "unknown payload ref" in str(exc)

    def test_reconnect_resends_payloads_in_full(self, remote):
        design, workload = load_design(FULL_SPEC)
        remote.submit(EvaluateJob(design, workload)).result(timeout=60)
        assert remote._sent_refs, "first job should have interned refs"
        # Sever the transport: the fresh connection's server-side blob
        # store is empty, so the client must drop its sent-ref memory
        # and re-carry the payloads inline.
        remote._sock.shutdown(2)
        result = remote.submit(EvaluateJob(design, workload)).result(
            timeout=60
        )
        with Session() as local:
            expected = local.evaluate(design, workload)
        assert result.to_dict() == expected.to_dict()


class TestFieldProjection:
    """``fields=`` trims the response envelope server-side; projected
    handles resolve to plain dicts."""

    def test_projected_fields_match_full_result(self, remote):
        design, workload = load_design(FULL_SPEC)
        job = EvaluateJob(design, workload)
        full = remote.submit(job).result(timeout=60)
        projected = remote.submit(
            job, fields=["latency", "summary"]
        ).result(timeout=60)
        assert set(projected) == {"schema", "kind", "latency", "summary"}
        assert projected["latency"] == full.to_dict()["latency"]
        assert projected["summary"] == {
            "cycles": full.cycles,
            "energy_pj": full.energy_pj,
            "edp": full.edp,
        }

    def test_submit_many_projects_every_result(self, remote):
        design, workload = load_design(FULL_SPEC)
        handles = remote.submit_many(
            [EvaluateJob(design, workload) for _ in range(3)],
            fields=["summary"],
        )
        summaries = [h.result(timeout=60) for h in handles]
        with Session() as local:
            expected = local.evaluate(design, workload)
        assert all(
            s == {
                "schema": 1,
                "kind": "evaluation",
                "summary": {
                    "cycles": expected.cycles,
                    "energy_pj": expected.energy_pj,
                    "edp": expected.edp,
                },
            }
            for s in summaries
        )

    def test_projection_applies_to_worker_pool_jobs(self, remote):
        design, workload = load_design(FULL_SPEC)
        projected = remote.submit(
            SearchJob(design, workload), fields=["best"]
        ).result(timeout=120)
        assert set(projected) == {"schema", "kind", "best"}
        assert projected["kind"] == "search"
        assert projected["best"] is not None

    def test_invalid_fields_rejected(self, remote):
        design, workload = load_design(FULL_SPEC)
        exc = remote.submit(
            EvaluateJob(design, workload), fields=[1, 2]
        ).exception(timeout=60)
        assert isinstance(exc, SpecError)
        assert "'fields'" in str(exc)

    def test_errors_unaffected_by_projection(self, remote):
        design, workload = load_design(_overflow_spec())
        exc = remote.submit(
            EvaluateJob(design, workload), fields=["summary"]
        ).exception(timeout=60)
        assert isinstance(exc, ValidationError)


class TestServerStats:
    def test_counters_track_batches(self, remote):
        design, workload = load_design(FULL_SPEC)
        handles = remote.submit_many(
            [EvaluateJob(design, workload) for _ in range(6)]
        )
        for handle in handles:
            handle.result(timeout=60)
        stats = remote.server_stats(timeout=10)
        assert stats["evaluate_jobs"] >= 6
        assert stats["evaluate_batches"] >= 1
        assert stats["evaluate_batch_max"] >= 1
        assert stats["evaluate_batch_mean"] >= 1
        assert stats["engine_seconds"] > 0
        assert stats["clients"] >= 1
