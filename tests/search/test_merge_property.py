"""Property tests for `ParetoFrontier.merge` under shard delivery.

The distributed merge contract (see ``docs/distributed.md``): folding
per-shard frontiers *in shard order* reproduces exactly the frontier a
single scan would have built by adding every point in stream-index
order — and because the coordinator sorts shard results before
folding, the delivery order in which shards actually arrive (late,
duplicated, interleaved) can never change the outcome. These
properties pin that down on the frontier alone, independent of the
engine, for 1-D and multi-axis objectives.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.frontier import FrontierPoint, ParetoFrontier

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def _axes(dim: int) -> tuple:
    return tuple("abc"[:dim])


def _point(index: int, vector: tuple) -> FrontierPoint:
    return FrontierPoint(
        index=index,
        score=vector[0],
        objectives=tuple(vector),
        metrics={"cycles": 1.0, "energy_pj": 1.0, "edp": 1.0},
    )


def _key(frontier: ParetoFrontier) -> list:
    return [
        (p.index, p.score, p.objectives) for p in frontier.ordered()
    ]


def streams(dim: int):
    """A candidate stream (vectors in stream order) plus shard cuts."""
    return st.tuples(
        st.lists(st.tuples(*[finite] * dim), min_size=1, max_size=60),
        st.data(),
    )


def _shard_frontiers(vectors, cuts, dim):
    """Build per-shard frontiers the way workers do: each shard adds
    only its own contiguous slice, with global stream indices."""
    bounds = [0, *sorted(cuts), len(vectors)]
    shards = []
    for shard_id, (start, stop) in enumerate(zip(bounds, bounds[1:])):
        frontier = ParetoFrontier(axes=_axes(dim))
        for index in range(start, stop):
            frontier.add(_point(index, vectors[index]))
        shards.append((shard_id, frontier))
    return shards


@st.composite
def sharded_streams(draw, dim: int):
    vectors = draw(
        st.lists(st.tuples(*[finite] * dim), min_size=1, max_size=60)
    )
    cut_count = draw(st.integers(min_value=0, max_value=5))
    cuts = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(vectors)),
            min_size=cut_count,
            max_size=cut_count,
        )
    )
    return vectors, cuts


@settings(max_examples=150, deadline=None)
@given(data=st.one_of(sharded_streams(1), sharded_streams(2), sharded_streams(3)))
def test_shard_order_fold_equals_sequential_scan(data):
    vectors, cuts = data
    dim = len(vectors[0])
    sequential = ParetoFrontier(axes=_axes(dim))
    for index, vector in enumerate(vectors):
        sequential.add(_point(index, vector))

    merged = ParetoFrontier(axes=_axes(dim))
    for _shard_id, frontier in _shard_frontiers(vectors, cuts, dim):
        merged.merge(frontier)
    assert _key(merged) == _key(sequential)
    if len(sequential) > 0:
        assert merged.best().index == sequential.best().index
        assert merged.best().score == sequential.best().score


@settings(max_examples=150, deadline=None)
@given(
    data=st.one_of(sharded_streams(1), sharded_streams(2)),
    order=st.randoms(use_true_random=False),
)
def test_arrival_order_is_irrelevant_after_sorting(data, order):
    """The coordinator's rule: results may *arrive* in any order, but
    the fold sorts by shard id first — so any arrival permutation
    gives a bit-identical frontier."""
    vectors, cuts = data
    dim = len(vectors[0])
    shards = _shard_frontiers(vectors, cuts, dim)

    canonical = ParetoFrontier(axes=_axes(dim))
    for _shard_id, frontier in shards:
        canonical.merge(frontier)

    arrived = list(shards)
    order.shuffle(arrived)
    merged = ParetoFrontier(axes=_axes(dim))
    for _shard_id, frontier in sorted(arrived, key=lambda s: s[0]):
        merged.merge(frontier)
    assert _key(merged) == _key(canonical)


@settings(max_examples=100, deadline=None)
@given(data=st.one_of(sharded_streams(1), sharded_streams(2)))
def test_duplicate_shard_delivery_is_idempotent(data):
    """A reassigned shard can be reported twice (the coordinator keeps
    the first); merging the same shard frontier again must be a
    no-op, because every re-added point is an exact duplicate."""
    vectors, cuts = data
    dim = len(vectors[0])
    shards = _shard_frontiers(vectors, cuts, dim)

    merged = ParetoFrontier(axes=_axes(dim))
    for _shard_id, frontier in shards:
        merged.merge(frontier)
    before = _key(merged)
    for _shard_id, frontier in shards:
        merged.merge(frontier)
    assert _key(merged) == before


@settings(max_examples=100, deadline=None)
@given(data=st.one_of(sharded_streams(1), sharded_streams(3)))
def test_dropped_shard_loses_only_that_shards_points(data):
    """Dropping a shard (the coordinator raises rather than merging a
    partial set — this pins *why*): the surviving merge equals a scan
    of the stream with that slice deleted, nothing more or less."""
    vectors, cuts = data
    dim = len(vectors[0])
    shards = _shard_frontiers(vectors, cuts, dim)
    if len(shards) < 2:
        return
    dropped = len(shards) // 2
    bounds = [0, *sorted(cuts), len(vectors)]
    start, stop = bounds[dropped], bounds[dropped + 1]

    merged = ParetoFrontier(axes=_axes(dim))
    for shard_id, frontier in shards:
        if shard_id != dropped:
            merged.merge(frontier)

    expected = ParetoFrontier(axes=_axes(dim))
    for index, vector in enumerate(vectors):
        if not start <= index < stop:
            expected.add(_point(index, vector))
    assert _key(merged) == _key(expected)
