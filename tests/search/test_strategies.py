"""Strategy-level guarantees: scalar equivalence, winner-on-frontier,
frontier agreement on exhaustive mapspaces, and evolutionary behaviour
(determinism, pinned factors, budget accounting).
"""

from __future__ import annotations

import pytest

from repro import Design, SAFSpec, Session, Workload, matmul
from repro.api.jobs import SearchJob
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.errors import SpecError
from repro.mapping.mapspace import Mapper, MapspaceConstraints
from repro.model.engine import Evaluator
from repro.search.evolutionary import EvolutionConfig, genome_of
from repro.search.frontier import dominates

BUDGET = 24


def _arch(buffer_words=16 * 1024, macs=16) -> Architecture:
    return Architecture(
        "strategies",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Buffer", buffer_words, component="sram",
                         read_bandwidth=8, write_bandwidth=8),
        ],
        ComputeLevel("MAC", instances=macs),
    )


def _sampled_case():
    constraints = MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]})
    workload = Workload.uniform(matmul(128, 128, 128), {"A": 0.2, "B": 0.2})
    design = Design("sampled", _arch(), SAFSpec(), constraints=constraints)
    return design, workload


def _exhaustive_case():
    workload = Workload.uniform(matmul(8, 8, 8), {"A": 0.5, "B": 0.5})
    design = Design(
        "tiny", _arch(buffer_words=1024, macs=4),
        SAFSpec(), constraints=MapspaceConstraints(),
    )
    return design, workload


def _outcome(strategy, objective=None, case=_sampled_case, budget=BUDGET,
             **evaluator_kwargs):
    design, workload = case()
    evaluator = Evaluator(search_budget=budget, **evaluator_kwargs)
    return evaluator._search_full(
        design, workload, objective=objective, strategy=strategy
    )


class TestScalarEquivalence:
    @pytest.mark.parametrize("objective", [None, "energy", "cycles"])
    def test_batched_matches_serial_bit_identically(self, objective):
        serial = _outcome("serial", objective)
        batched = _outcome("batched", objective)
        assert serial.best_score == batched.best_score
        assert serial.best_index == batched.best_index
        assert (serial.best_result.to_dict()
                == batched.best_result.to_dict())
        assert serial.frontier.to_dict() == batched.frontier.to_dict()

    def test_scalar_winner_is_on_frontier(self):
        outcome = _outcome("batched", "energy")
        winner = outcome.frontier.best()
        assert winner.index == outcome.best_index
        assert winner.score == outcome.best_score
        assert winner in outcome.frontier.ordered()


class TestMultiObjective:
    def test_frontier_mutually_non_dominated(self):
        outcome = _outcome("batched", ("energy", "cycles", "slack"))
        points = outcome.frontier.ordered()
        assert points
        for a in points:
            for b in points:
                assert not dominates(a.objectives, b.objectives)

    def test_scalar_winner_on_multi_frontier(self):
        outcome = _outcome("batched", ("energy", "cycles", "slack"))
        assert any(
            p.index == outcome.best_index
            for p in outcome.frontier.ordered()
        )

    def test_parallel_frontier_matches_serial(self):
        design, workload = _sampled_case()
        solo = Evaluator(search_budget=BUDGET)._search_full(
            design, workload, objective=("energy", "cycles"),
        )
        fanned = Evaluator(search_budget=BUDGET)._search_full(
            design, workload, objective=("energy", "cycles"), parallel=2
        )
        assert solo.frontier.to_dict() == fanned.frontier.to_dict()
        assert solo.best_score == fanned.best_score


class TestExhaustiveAgreement:
    def test_all_strategies_agree_on_exhaustive_mapspaces(self):
        """On an exhaustive scan every strategy sees every candidate,
        so the frontiers must be identical — evolutionary degrades to
        the batched scan by design."""
        objective = ("energy", "cycles")
        frontiers = {
            strategy: _outcome(
                strategy, objective, case=_exhaustive_case, budget=4096
            ).frontier.to_dict()
            for strategy in ("serial", "batched", "evolutionary")
        }
        assert frontiers["serial"] == frontiers["batched"]
        assert frontiers["serial"] == frontiers["evolutionary"]


class TestEvolutionary:
    def test_deterministic_with_fixed_seed(self):
        a = _outcome("evolutionary", "energy")
        b = _outcome("evolutionary", "energy")
        assert a.best_score == b.best_score
        assert a.best_index == b.best_index
        assert a.frontier.to_dict() == b.frontier.to_dict()

    def test_winner_is_valid_and_on_frontier(self):
        outcome = _outcome("evolutionary", "energy")
        assert outcome.best_result is not None
        winner = outcome.frontier.best()
        assert winner.index == outcome.best_index

    def test_fixed_factors_honoured_by_construction(self):
        constraints = MapspaceConstraints(
            spatial_dims={"Buffer": ["n", "m"]},
            fixed_factors={"Buffer": {"k": 8}},
        )
        workload = Workload.uniform(
            matmul(128, 128, 128), {"A": 0.2, "B": 0.2}
        )
        design = Design(
            "pinned", _arch(), SAFSpec(), constraints=constraints
        )
        evaluator = Evaluator(search_budget=BUDGET)
        outcome = evaluator._search_full(
            design, workload, objective="edp", strategy="evolutionary"
        )
        mapper = Mapper(workload.einsum, design.arch, constraints)
        for point in outcome.frontier.ordered():
            mapping = point.result.dense.mapping
            genome = genome_of(mapper, mapping)
            assert genome["k"][mapper._dim_slot_names("k").index(
                ("t", "Buffer")
            )] == 8

    def test_explicit_candidates_rejected(self):
        design, workload = _sampled_case()
        evaluator = Evaluator(search_budget=BUDGET)
        with pytest.raises(SpecError, match="evolutionary"):
            evaluator._search_full(
                design, workload,
                candidates=[design.mapping] if design.mapping else [],
                strategy="evolutionary",
            )

    def test_budget_caps_proposals(self):
        """The evolutionary loop never evaluates more candidates than
        the budget: total dense-stage analyses stay <= budget."""
        design, workload = _sampled_case()
        evaluator = Evaluator(search_budget=BUDGET)
        evaluator._search_full(
            design, workload, objective="edp", strategy="evolutionary"
        )
        dense = evaluator.cache.stats()["dense"]
        assert dense["misses"] + dense["hits"] <= BUDGET

    def test_matches_or_beats_batched_at_equal_budget(self):
        """The acceptance bar asserted for CI in
        benchmarks/bench_search_pareto.py, pinned here on the small
        case too."""
        batched = _outcome("batched", "edp")
        evolved = _outcome("evolutionary", "edp")
        assert evolved.best_score <= batched.best_score

    def test_evolution_config_knobs(self):
        config = EvolutionConfig(population_fraction=0.5, mutation_rate=0.9)
        outcome = _outcome("evolutionary", "energy", evolution=config)
        assert outcome.best_result is not None

    def test_session_round_trip(self):
        design, workload = _sampled_case()
        with Session(search_budget=BUDGET) as session:
            result = session.search(
                SearchJob(design, workload, strategy="evolutionary",
                          objective=("energy", "cycles", "slack"))
            )
        data = result.to_dict()
        assert data["strategy"] == "evolutionary"
        assert data["objective"] == {
            "multi": ["energy", "cycles", "slack"], "scalar": "edp",
        }
        from repro.model.result import SearchResult

        assert SearchResult.from_dict(data).to_dict() == data
