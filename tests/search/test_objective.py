"""Objective resolution and wire-spec round-trips.

Every objective form a user can hand to ``Session.search`` must
resolve to an :class:`Objective`, and every wire-safe objective must
survive ``to_spec -> objective_from_spec`` unchanged; callables are the
single deliberate exception (descriptive spec only, never rebuilt).
"""

from __future__ import annotations

import math

import pytest

from repro import Session
from repro.common.errors import SpecError
from repro.search import (
    MultiObjective,
    NamedObjective,
    Objective,
    WeightedObjective,
    resolve_objective,
)
from repro.search.objective import (
    DEFAULT_OBJECTIVE,
    OBJECTIVE_NAMES,
    CallableObjective,
    capacity_slack,
    objective_from_spec,
)
from tests.io.test_yaml_spec import FULL_SPEC


@pytest.fixture(scope="module")
def result():
    with Session() as session:
        return session.evaluate(FULL_SPEC)


class TestResolution:
    def test_none_is_edp(self):
        assert resolve_objective(None) is DEFAULT_OBJECTIVE
        assert DEFAULT_OBJECTIVE.name == "edp"

    def test_names_resolve(self):
        for name in OBJECTIVE_NAMES:
            objective = resolve_objective(name)
            assert isinstance(objective, NamedObjective)
            assert objective.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(SpecError, match="objective"):
            resolve_objective("power")

    def test_sequence_resolves_to_multi(self):
        objective = resolve_objective(["energy", "cycles"])
        assert isinstance(objective, MultiObjective)
        assert objective.axes == ("energy", "cycles")

    def test_objective_passes_through(self):
        objective = NamedObjective("energy")
        assert resolve_objective(objective) is objective

    def test_callable_wraps(self):
        objective = resolve_objective(lambda r: r.cycles)
        assert isinstance(objective, CallableObjective)
        assert not objective.wire_safe

    def test_garbage_rejected(self):
        with pytest.raises(SpecError):
            resolve_objective(3.14)


class TestScoring:
    def test_named_scores_match_metrics(self, result):
        assert NamedObjective("edp").score(result) == result.edp
        assert NamedObjective("energy").score(result) == result.energy_pj
        assert NamedObjective("cycles").score(result) == result.cycles
        assert NamedObjective("latency").score(result) == result.cycles
        assert NamedObjective("slack").score(result) == pytest.approx(
            -capacity_slack(result)
        )

    def test_capacity_slack_bounds(self, result):
        slack = capacity_slack(result)
        assert 0.0 <= slack <= 1.0

    def test_weighted_is_linear(self, result):
        objective = resolve_objective(
            {"weighted": {"energy": 0.5, "cycles": 2.0}}
        )
        expected = 0.5 * result.energy_pj + 2.0 * result.cycles
        assert objective.score(result) == pytest.approx(expected)

    def test_weighted_rejects_bad_weights(self):
        with pytest.raises(SpecError):
            resolve_objective({"weighted": {"energy": math.inf}})
        with pytest.raises(SpecError):
            resolve_objective({"weighted": {"power": 1.0}})

    def test_multi_vector_and_scalar(self, result):
        objective = MultiObjective(
            metrics=("energy", "cycles", "slack"), scalar="edp"
        )
        assert objective.score(result) == result.edp
        vector = objective.vector(result)
        assert vector == (
            result.energy_pj,
            result.cycles,
            pytest.approx(-capacity_slack(result)),
        )

    def test_scalar_vector_is_one_dimensional(self, result):
        objective = NamedObjective("energy")
        assert objective.vector(result) == (result.energy_pj,)
        assert objective.axes == ("energy",)


class TestWireSpecs:
    @pytest.mark.parametrize(
        "objective",
        [
            NamedObjective("energy"),
            WeightedObjective((("energy", 0.5), ("cycles", 2.0))),
            MultiObjective(metrics=("energy", "cycles"), scalar="energy"),
        ],
        ids=["named", "weighted", "multi"],
    )
    def test_wire_safe_round_trip(self, objective):
        assert objective.wire_safe
        spec = objective.to_spec()
        rebuilt = objective_from_spec(spec)
        assert rebuilt == objective
        assert rebuilt.to_spec() == spec

    def test_named_spec_is_plain_string(self):
        assert NamedObjective("energy").to_spec() == "energy"

    def test_callable_spec_is_descriptive_only(self):
        objective = CallableObjective(capacity_slack)
        spec = objective.to_spec()
        assert spec == {"callable": "repro.search.objective:capacity_slack"}
        with pytest.raises(SpecError, match="callable"):
            objective_from_spec(spec)

    def test_unknown_spec_rejected(self):
        with pytest.raises(SpecError):
            objective_from_spec({"maximize": "throughput"})

    def test_base_objective_is_abstract_enough(self, result):
        with pytest.raises(NotImplementedError):
            Objective().score(result)
