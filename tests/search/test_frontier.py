"""Pareto frontier invariants, property-tested.

The frontier is the search's source of truth for winners — the scalar
equivalence guarantee ("batched == serial oracle, bit-identical") rides
on the 1-D frontier keeping *exactly* the first strict minimum. The
properties here pin that down independently of the engine.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SpecError
from repro.search.frontier import FrontierPoint, ParetoFrontier, dominates

finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def vectors(dim: int):
    return st.lists(
        st.tuples(*[finite] * dim), min_size=1, max_size=40
    )


def _point(index: int, vector: tuple) -> FrontierPoint:
    return FrontierPoint(
        index=index,
        score=vector[0],
        objectives=tuple(vector),
        metrics={"cycles": 1.0, "energy_pj": 1.0, "edp": 1.0},
    )


def _fill(frontier: ParetoFrontier, vecs) -> None:
    for index, vector in enumerate(vecs):
        frontier.add(_point(index, vector))


class TestDominance:
    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_strict_dominance(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))
        assert not dominates((1.0, 3.0), (1.0, 2.0))

    def test_incomparable(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 3.0))


@settings(max_examples=200, deadline=None)
@given(vecs=st.one_of(vectors(1), vectors(2), vectors(3)))
def test_points_mutually_non_dominated(vecs):
    frontier = ParetoFrontier(axes=tuple("abc"[: len(vecs[0])]))
    _fill(frontier, vecs)
    points = frontier.ordered()
    assert points, "a non-empty stream always leaves a frontier"
    for a in points:
        for b in points:
            assert not dominates(a.objectives, b.objectives)


@settings(max_examples=200, deadline=None)
@given(vecs=st.one_of(vectors(2), vectors(3)))
def test_frontier_is_exactly_the_non_dominated_set(vecs):
    frontier = ParetoFrontier(axes=tuple("abc"[: len(vecs[0])]))
    _fill(frontier, vecs)
    kept = {p.index for p in frontier.ordered()}
    for index, vector in enumerate(vecs):
        vec = tuple(vector)
        strictly_dominated = any(
            dominates(tuple(other), vec) for other in vecs
        )
        first_of_its_value = vecs.index(vector) == index
        if not strictly_dominated and first_of_its_value:
            assert index in kept
        if strictly_dominated:
            assert index not in kept


@settings(max_examples=200, deadline=None)
@given(vecs=vectors(1))
def test_scalar_frontier_is_the_first_minimum(vecs):
    """1-D frontier == the serial oracle: first strictly-better wins."""
    frontier = ParetoFrontier(axes=("edp",))
    _fill(frontier, vecs)
    points = frontier.ordered()
    assert len(points) == 1
    scores = [v[0] for v in vecs]
    expected_index = scores.index(min(scores))
    assert points[0].index == expected_index
    assert points[0].objectives == (min(scores),)
    assert frontier.best() is points[0]


@settings(max_examples=200, deadline=None)
@given(vecs=st.one_of(vectors(1), vectors(2)))
def test_best_is_on_the_frontier(vecs):
    frontier = ParetoFrontier(axes=tuple("ab"[: len(vecs[0])]))
    _fill(frontier, vecs)
    best = frontier.best()
    assert best in frontier.ordered()
    assert all(best.score <= p.score or best.index < p.index
               for p in frontier.ordered())


@settings(max_examples=150, deadline=None)
@given(vecs=st.one_of(vectors(2), vectors(3)), split=st.integers(0, 40))
def test_merge_equals_sequential_adds(vecs, split):
    """Chunked accumulation (the parallel path) must agree with the
    serial scan bit for bit."""
    dim = len(vecs[0])
    axes = tuple("abc"[:dim])
    serial = ParetoFrontier(axes=axes)
    _fill(serial, vecs)

    split = min(split, len(vecs))
    left, right = ParetoFrontier(axes=axes), ParetoFrontier(axes=axes)
    for index, vector in enumerate(vecs):
        (left if index < split else right).add(_point(index, vector))
    merged = ParetoFrontier(axes=axes)
    merged.merge(left)
    merged.merge(right)
    assert merged.to_dict() == serial.to_dict()


@settings(max_examples=100, deadline=None)
@given(vecs=st.one_of(vectors(1), vectors(3)))
def test_dict_round_trip_is_bit_exact(vecs):
    frontier = ParetoFrontier(axes=tuple("abc"[: len(vecs[0])]))
    _fill(frontier, vecs)
    data = frontier.to_dict()
    rebuilt = ParetoFrontier.from_dict(data)
    assert rebuilt.to_dict() == data


class TestGuards:
    def test_axis_mismatch_rejected(self):
        frontier = ParetoFrontier(axes=("a", "b"))
        with pytest.raises(SpecError, match="ax"):
            frontier.add(_point(0, (1.0,)))

    def test_empty_frontier_has_no_best(self):
        frontier = ParetoFrontier(axes=("a",))
        assert frontier.best() is None
        assert frontier.ordered() == []
