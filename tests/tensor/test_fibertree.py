"""Unit tests for the fibertree abstraction."""

import numpy as np
import pytest

from repro.common.errors import SpecError
from repro.tensor.fibertree import Fiber, FiberTree, _tile_origins


@pytest.fixture
def small_tree():
    # Matches Fig. 7b's structure: one all-zero row.
    dense = np.array(
        [
            [1.0, 0.0, 2.0, 0.0],
            [0.0, 3.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
            [4.0, 0.0, 0.0, 5.0],
        ]
    )
    return FiberTree(dense, ["M", "K"])


class TestFiber:
    def test_length(self):
        f = Fiber([0, 2], [1.0, 2.0])
        assert len(f) == 2

    def test_empty(self):
        assert Fiber().is_empty

    def test_payload_lookup(self):
        f = Fiber([0, 2], [1.0, 2.0])
        assert f.payload_at(2) == 2.0
        assert f.payload_at(1) is None

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SpecError):
            Fiber([0, 1], [1.0])


class TestFiberTree:
    def test_basic_stats(self, small_tree):
        assert small_tree.shape == (4, 4)
        assert small_tree.nnz == 5
        assert small_tree.density == 5 / 16

    def test_root_omits_empty_rows(self, small_tree):
        # Row 2 is all-zero: coordinate 2 absent from the root fiber.
        assert small_tree.root.coords == [0, 1, 3]

    def test_leaf_values(self, small_tree):
        row0 = small_tree.root.payload_at(0)
        assert row0.coords == [0, 2]
        assert row0.payloads == [1.0, 2.0]

    def test_fibers_at_rank(self, small_tree):
        assert len(small_tree.fibers_at_rank(0)) == 1
        assert len(small_tree.fibers_at_rank(1)) == 3  # nonempty rows

    def test_fibers_at_bad_rank(self, small_tree):
        with pytest.raises(SpecError):
            small_tree.fibers_at_rank(5)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(SpecError):
            FiberTree(np.zeros((2, 2)), ["M"])

    def test_tile_extraction(self, small_tree):
        tile = small_tree.tile((0, 0), (2, 2))
        np.testing.assert_array_equal(tile, [[1.0, 0.0], [0.0, 3.0]])

    def test_tile_truncates_at_edge(self, small_tree):
        tile = small_tree.tile((3, 3), (2, 2))
        assert tile.shape == (1, 1)

    def test_tile_occupancies(self, small_tree):
        occ = small_tree.tile_occupancies((2, 2))
        assert sorted(occ) == [1, 1, 1, 2]
        assert sum(occ) == small_tree.nnz

    def test_tile_occupancy_full(self, small_tree):
        assert small_tree.tile_occupancies((4, 4)) == [5]


class TestTileOrigins:
    def test_grid(self):
        origins = list(_tile_origins((4, 4), (2, 2)))
        assert origins == [(0, 0), (0, 2), (2, 0), (2, 2)]

    def test_ragged(self):
        origins = list(_tile_origins((5,), (2,)))
        assert origins == [(0,), (2,), (4,)]

    def test_rejects_zero_tile(self):
        with pytest.raises(SpecError):
            list(_tile_origins((4,), (0,)))
