"""Unit tests for synthetic sparse tensor generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SpecError
from repro.tensor.generator import (
    banded_matrix,
    structured_sparse_matrix,
    uniform_random_tensor,
)


class TestUniformRandom:
    def test_exact_nnz(self):
        t = uniform_random_tensor((10, 10), 0.3, seed=0)
        assert np.count_nonzero(t) == 30

    def test_zero_density(self):
        t = uniform_random_tensor((4, 4), 0.0, seed=0)
        assert np.count_nonzero(t) == 0

    def test_full_density(self):
        t = uniform_random_tensor((4, 4), 1.0, seed=0)
        assert np.count_nonzero(t) == 16

    def test_reproducible(self):
        a = uniform_random_tensor((8, 8), 0.5, seed=42)
        b = uniform_random_tensor((8, 8), 0.5, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_density(self):
        with pytest.raises(SpecError):
            uniform_random_tensor((4,), 1.5)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25)
    def test_nnz_matches_rounding(self, density):
        t = uniform_random_tensor((8, 8), density, seed=1)
        assert np.count_nonzero(t) == round(64 * density)


class TestBanded:
    def test_band_respected(self):
        t = banded_matrix(8, 8, band_width=1, seed=0)
        i, j = np.nonzero(t)
        assert np.all(np.abs(i - j) <= 1)

    def test_full_fill_band_dense(self):
        t = banded_matrix(6, 6, band_width=0, fill_density=1.0)
        assert np.count_nonzero(t) == 6  # the diagonal

    def test_fill_density_thins(self):
        full = banded_matrix(64, 64, 2, fill_density=1.0, seed=0)
        thin = banded_matrix(64, 64, 2, fill_density=0.5, seed=0)
        assert np.count_nonzero(thin) < np.count_nonzero(full)

    def test_rejects_negative_band(self):
        with pytest.raises(SpecError):
            banded_matrix(4, 4, -1)


class TestStructured:
    def test_exact_block_counts(self):
        t = structured_sparse_matrix(8, 16, 2, 4, seed=0)
        blocks = t.reshape(8, 4, 4)
        counts = np.count_nonzero(blocks, axis=2)
        assert np.all(counts == 2)

    def test_density(self):
        t = structured_sparse_matrix(4, 8, 2, 8, seed=0)
        assert np.count_nonzero(t) / t.size == 0.25

    def test_rejects_infeasible_structure(self):
        with pytest.raises(SpecError):
            structured_sparse_matrix(4, 8, 5, 4)

    def test_rejects_misaligned_cols(self):
        with pytest.raises(SpecError):
            structured_sparse_matrix(4, 10, 2, 4)
