"""StructuredNMDensity proven against brute-force tile enumeration.

The model claims closed forms for tiles over a row-aware N:M pattern:
every aligned block of M innermost elements holds exactly N nonzeros,
uniformly placed within the block, independently across blocks. The
oracle enumerates *every* placement (product of per-block position
choices) for every aligned tile position and averages exactly.
"""

import itertools
import math

import pytest

from repro.common.errors import SpecError
from repro.sparse.density import FixedStructuredDensity, StructuredNMDensity


def enumerate_row_tiles(n, m, row_len, tile_cols):
    """Exact (occupancy, probability) pairs of one row segment of
    ``tile_cols`` elements, by enumerating every per-block placement of
    a ``row_len``-element row (row_len a multiple of m).

    Tile starts are *block-aligned* — the model's stated assumption —
    so a tile covers ``tile_cols // m`` whole blocks plus the first
    ``tile_cols % m`` positions of the next one.
    """
    blocks = row_len // m
    placements = list(itertools.combinations(range(m), n))
    dist: dict[int, float] = {}
    total = 0
    for combo in itertools.product(range(len(placements)), repeat=blocks):
        row = []
        for b, choice in enumerate(combo):
            row.extend(b * m + pos for pos in placements[choice])
        for start in range(0, row_len - tile_cols + 1, m):
            occ = sum(1 for pos in row if start <= pos < start + tile_cols)
            dist[occ] = dist.get(occ, 0) + 1
            total += 1
    return {occ: count / total for occ, count in dist.items()}


class TestClosedFormsAgainstBruteForce:
    @pytest.mark.parametrize("n,m", [(2, 4), (1, 4), (1, 2), (3, 4)])
    @pytest.mark.parametrize("tile_cols", [1, 2, 3, 4, 6, 8])
    def test_single_row_distribution_matches_enumeration(
        self, n, m, tile_cols
    ):
        row_len = 8
        model = StructuredNMDensity(n, m)
        expected = enumerate_row_tiles(n, m, row_len, tile_cols)
        got = dict(model.occupancy_distribution(tile_cols))
        assert set(got) == set(expected)
        for occ, p in expected.items():
            assert got[occ] == pytest.approx(p, abs=1e-12)

    @pytest.mark.parametrize("n,m", [(2, 4), (1, 4), (3, 4)])
    @pytest.mark.parametrize("tile_cols", [1, 2, 3, 5, 6])
    def test_single_row_moments_match_enumeration(self, n, m, tile_cols):
        row_len = 8
        model = StructuredNMDensity(n, m)
        expected = enumerate_row_tiles(n, m, row_len, tile_cols)
        mean = sum(occ * p for occ, p in expected.items())
        p_empty = expected.get(0, 0.0)
        assert model.expected_occupancy(tile_cols) == pytest.approx(mean)
        assert model.prob_empty(tile_cols) == pytest.approx(p_empty)
        assert model.max_occupancy(tile_cols) == max(expected)

    @pytest.mark.parametrize("rows", [1, 2, 3])
    @pytest.mark.parametrize("tile_cols", [2, 3, 4, 6]
    )
    def test_multi_row_tiles_convolve_independent_rows(self, rows, tile_cols):
        n, m, row_len = 2, 4, 8
        model = StructuredNMDensity(n, m)
        single = enumerate_row_tiles(n, m, row_len, tile_cols)
        # Convolve the exact single-row law across independent rows.
        expected = {0: 1.0}
        for _ in range(rows):
            folded: dict[int, float] = {}
            for have, p0 in expected.items():
                for occ, p in single.items():
                    folded[have + occ] = folded.get(have + occ, 0.0) + p0 * p
            expected = folded
        got = dict(model.occupancy_distribution((rows, tile_cols)))
        for occ, p in expected.items():
            if p > 1e-12:
                assert got[occ] == pytest.approx(p, abs=1e-10)
        mean = sum(occ * p for occ, p in expected.items())
        assert model.expected_occupancy((rows, tile_cols)) == pytest.approx(
            mean
        )
        assert model.prob_empty((rows, tile_cols)) == pytest.approx(
            expected.get(0, 0.0), abs=1e-12
        )


class TestModelProperties:
    def test_density_and_cache_key(self):
        model = StructuredNMDensity(2, 4)
        assert model.density == 0.5
        assert model.cache_key() == ("structured-nm", 2, 4)
        assert model.cache_key() != FixedStructuredDensity(2, 4).cache_key()

    def test_block_aligned_tiles_are_deterministic(self):
        model = StructuredNMDensity(2, 4)
        assert model.occupancy_distribution((3, 8)) == [(12, 1.0)]
        assert model.quantile_occupancy((3, 8)) == 12.0
        assert model.prob_empty((3, 8)) == 0.0

    def test_distribution_sums_to_one(self):
        model = StructuredNMDensity(2, 4)
        for shape in (3, 6, (2, 3), (4, 7)):
            total = sum(p for _, p in model.occupancy_distribution(shape))
            assert total == pytest.approx(1.0)

    def test_quantile_bounded_by_max(self):
        model = StructuredNMDensity(2, 4)
        for shape in (3, (2, 6), (8, 7)):
            q = model.quantile_occupancy(shape)
            assert (
                model.expected_occupancy(shape)
                <= q
                <= model.max_occupancy(shape)
            )

    def test_monotone_bound_is_expected_occupancy(self):
        model = StructuredNMDensity(2, 4)
        assert model.monotone_occupancy_bound((4, 6)) == 12.0

    def test_large_row_counts_fall_back_to_two_point(self):
        model = StructuredNMDensity(2, 4)
        dist = model.occupancy_distribution((1000, 6))
        assert len(dist) <= 2
        mean = sum(occ * p for occ, p in dist)
        assert mean == pytest.approx(
            model.expected_occupancy((1000, 6)), rel=1e-3
        )

    def test_zero_n_is_all_empty(self):
        model = StructuredNMDensity(0, 4)
        assert model.prob_empty((4, 4)) == 1.0
        assert model.occupancy_distribution((4, 4)) == [(0, 1.0)]

    def test_invalid_structures_rejected(self):
        with pytest.raises(SpecError):
            StructuredNMDensity(5, 4)
        with pytest.raises(SpecError):
            StructuredNMDensity(2, 0)
        with pytest.raises(SpecError):
            StructuredNMDensity(-1, 4)

    def test_differs_from_flattened_model_on_multi_row_tiles(self):
        """The row-aware model and the flattened model agree on single
        rows but disagree on (rows, cols) tiles whose rows each end in
        a partial block — the flattened model wrongly merges the
        per-row partials into one contiguous run."""
        nm = StructuredNMDensity(2, 4)
        flat = FixedStructuredDensity(2, 4)
        assert nm.occupancy_distribution(6) == flat.occupancy_distribution(6)
        assert nm.max_occupancy((2, 6)) != flat.max_occupancy((2, 6))


class TestEngineIntegration:
    def test_evaluates_under_dstc_design(self):
        """The model plugs into the bundled 2:4 tensor-core design's
        evaluation as tensor density (ROADMAP 4(b))."""
        from repro.api import Session
        from repro.designs import dstc
        from repro.workload.einsum import matmul
        from repro.workload.spec import Workload

        design = dstc.dstc_design()
        einsum = matmul(64, 64, 64, name="mm")
        workload = Workload(
            einsum,
            {
                "A": StructuredNMDensity(2, 4),
                "B": StructuredNMDensity(2, 4),
            },
        )
        with Session(check_capacity=False) as session:
            result = session.evaluate(design, workload)
        assert result.cycles > 0
        assert result.energy_pj > 0
