"""Tests for per-rank format models and classic format composition."""

import math

import pytest

from repro.common.errors import SpecError
from repro.sparse.formats import (
    Bitmask,
    CoordinatePayload,
    FormatRank,
    FormatSpec,
    RunLengthEncoding,
    Uncompressed,
    UncompressedBitmask,
    UncompressedOffsetPairs,
    classic_format,
    dense_format,
)


class TestPerRankOverheads:
    """The paper's overhead formulas (Sec 5.3.3)."""

    def test_bitmask_is_shape_bits(self):
        # Overhead_B = total #elements x 1 bit.
        assert Bitmask().metadata_bits(64, 2, 10) == 128

    def test_rle_is_nnz_times_runbits(self):
        # Overhead_RLE = #nonempty x run_length_bitwidth (short runs).
        fmt = RunLengthEncoding(run_bits=4)
        bits = fmt.metadata_bits(16, 1, 8)
        assert bits >= 8 * 4
        assert bits < 8 * 4 * 1.5  # overflow correction stays small

    def test_rle_overflow_grows_when_sparse(self):
        fmt = RunLengthEncoding(run_bits=2)
        dense_case = fmt.metadata_bits(16, 1, 8)
        sparse_case = fmt.metadata_bits(1024, 1, 8)
        assert sparse_case > dense_case

    def test_cp_uses_coordinate_width(self):
        assert CoordinatePayload().metadata_bits(256, 1, 10) == 80
        assert CoordinatePayload(coord_bits=2).metadata_bits(256, 1, 10) == 20

    def test_uop_pays_per_position(self):
        # CSR row pointers: (rows + 1) offsets even for empty rows.
        fmt = UncompressedOffsetPairs(offset_bits=8)
        assert fmt.metadata_bits(16, 1, 4) == 17 * 8

    def test_uncompressed_is_free(self):
        assert Uncompressed().metadata_bits(64, 4, 32) == 0

    def test_ub_keeps_payloads(self):
        assert UncompressedBitmask().compressed is False
        assert UncompressedBitmask().metadata_bits(8, 2, 3) == 16

    def test_rle_rejects_bad_bits(self):
        with pytest.raises(SpecError):
            RunLengthEncoding(run_bits=0)


class TestFormatSpec:
    def test_compressed_flag(self):
        assert classic_format("CSR").is_compressed
        assert not dense_format(2).is_compressed

    def test_rank_count_with_flattening(self):
        assert classic_format("COO").tensor_rank_count == 2
        assert classic_format("CSR").tensor_rank_count == 2
        assert classic_format("CSB").tensor_rank_count == 3

    def test_describe(self):
        assert classic_format("CSR").describe() == "UOP-CP"
        assert classic_format("COO").describe() == "CP^2"

    def test_group_extents_flattening(self):
        coo = classic_format("COO")
        assert coo.group_extents((4, 8)) == [32]

    def test_group_extents_pads_missing_outer_ranks(self):
        csb = classic_format("CSB")
        assert csb.group_extents((8,)) == [1, 1, 8]

    def test_group_extents_folds_surplus_ranks(self):
        csr = classic_format("CSR")
        # A 4-rank tile under a 2-rank format folds the outer ranks.
        assert csr.group_extents((2, 3, 4, 5)) == [2 * 3 * 4, 5]

    def test_unknown_classic(self):
        with pytest.raises(SpecError):
            classic_format("ELL")

    def test_empty_spec_rejected(self):
        with pytest.raises(SpecError):
            FormatSpec([])

    def test_flattened_ranks_positive(self):
        with pytest.raises(SpecError):
            FormatRank(Bitmask(), flattened_ranks=0)


class TestTable2Compositions:
    """Table 2: classic formats as per-dimension format stacks."""

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("CSR", ["UOP", "CP"]),
            ("COO", ["CP"]),
            ("CSB", ["UOP", "CP", "CP"]),
            ("CSF", ["CP", "CP", "CP"]),
        ],
    )
    def test_rank_kinds(self, name, expected):
        fmt = classic_format(name)
        kinds = [repr(r.format) for r in fmt.ranks]
        assert kinds == expected
