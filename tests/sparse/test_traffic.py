"""Tests for the fine-grained action data model."""

import pytest

from repro.sparse.traffic import (
    ActionBreakdown,
    LevelTensorActions,
    SparseTraffic,
)


class TestActionBreakdown:
    def test_total_and_cycled(self):
        b = ActionBreakdown(actual=2, gated=3, skipped=5)
        assert b.total == 10
        assert b.cycled == 5

    def test_add(self):
        b = ActionBreakdown(1, 1, 1)
        b.add(ActionBreakdown(2, 3, 4))
        assert (b.actual, b.gated, b.skipped) == (3, 4, 5)

    def test_scaled(self):
        b = ActionBreakdown(2, 4, 6).scaled(0.5)
        assert (b.actual, b.gated, b.skipped) == (1, 2, 3)

    def test_split_remainder_is_skipped(self):
        b = ActionBreakdown.split(100, 0.25, 0.25)
        assert (b.actual, b.gated, b.skipped) == (25, 25, 50)

    def test_split_never_negative(self):
        b = ActionBreakdown.split(100, 0.9, 0.2)
        assert b.skipped == 0.0


class TestLevelTensorActions:
    def test_total_cycled(self):
        a = LevelTensorActions("A", "L")
        a.data_reads.add(ActionBreakdown(1, 2, 3))
        a.metadata_reads.add(ActionBreakdown(4, 0, 0))
        assert a.total_cycled_accesses == 7


class TestSparseTraffic:
    def test_at_creates_lazily(self):
        t = SparseTraffic()
        a = t.at("L", "A")
        assert a.tensor == "A"
        assert t.at("L", "A") is a

    def test_level_actions_filters(self):
        t = SparseTraffic()
        t.at("L0", "A")
        t.at("L0", "B")
        t.at("L1", "A")
        assert len(t.level_actions("L0")) == 2
