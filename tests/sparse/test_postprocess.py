"""Tests for traffic post-processing (sparse traffic assembly)."""

import math

import pytest

from repro import Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.dataflow import analyze_dataflow
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.sparse.density import UniformDensity
from repro.sparse.formats import (
    Bitmask,
    CoordinatePayload,
    FormatRank,
    FormatSpec,
)
from repro.sparse.postprocess import analyze_sparse, ensure_output_density
from repro.sparse.saf import (
    SAFSpec,
    gate_compute,
    gate_storage,
    skip_compute,
    skip_storage,
)


@pytest.fixture
def arch():
    return Architecture(
        "a",
        [StorageLevel("DRAM", None), StorageLevel("Buffer", 65536)],
        ComputeLevel("MAC"),
    )


def _sparse(arch, safs, densities=None, loops=None):
    wl = Workload.uniform(matmul(8, 8, 8), densities or {"A": 0.25})
    mapping = Mapping(
        [
            LevelMapping("DRAM", []),
            LevelMapping(
                "Buffer",
                loops or [Loop("m", 8), Loop("n", 8), Loop("k", 8)],
            ),
        ]
    )
    dense = analyze_dataflow(wl, arch, mapping)
    return dense, analyze_sparse(dense, safs)


cp2 = FormatSpec(
    [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
)
b2 = FormatSpec([FormatRank(Bitmask()), FormatRank(Bitmask())])


class TestOutputDensity:
    def test_derived_from_operands(self):
        wl = Workload.uniform(matmul(4, 16, 4), {"A": 0.25, "B": 0.25})
        ensure_output_density(wl)
        d_eff = 0.25 * 0.25
        expected = 1 - (1 - d_eff) ** 16
        assert math.isclose(wl.density_of("Z").density, expected)

    def test_user_override_respected(self):
        wl = Workload(
            matmul(4, 4, 4),
            {"Z": UniformDensity(0.123, 16)},
        )
        ensure_output_density(wl)
        assert wl.density_of("Z").density == 0.123


class TestDenseDesign:
    def test_everything_actual(self, arch):
        dense, sparse = _sparse(arch, SAFSpec(), densities={})
        a = sparse.at("Buffer", "A")
        assert a.data_reads.gated == 0
        assert a.data_reads.skipped == 0
        assert a.data_reads.actual == dense.at("Buffer", "A").reads

    def test_compute_all_actual(self, arch):
        _dense, sparse = _sparse(arch, SAFSpec(), densities={})
        assert sparse.compute.actual == 512


class TestCompressionOnly:
    """Compressed format without skipping: transfers shrink, feeds gate."""

    def test_transfer_data_scales_with_density(self, arch):
        safs = SAFSpec(formats={("Buffer", "A"): b2, ("DRAM", "A"): b2})
        dense, sparse = _sparse(arch, safs)
        fills_dense = dense.at("Buffer", "A").fills
        writes = sparse.at("Buffer", "A").data_writes
        assert math.isclose(writes.actual, fills_dense * 0.25)
        assert math.isclose(writes.skipped, fills_dense * 0.75)

    def test_feed_zeros_gated_without_skipping(self, arch):
        safs = SAFSpec(formats={("Buffer", "A"): b2, ("DRAM", "A"): b2})
        dense, sparse = _sparse(arch, safs)
        feed = dense.at("Buffer", "A").compute_feed_reads
        reads = sparse.at("Buffer", "A").data_reads
        assert math.isclose(reads.actual, feed * 0.25)
        assert math.isclose(reads.gated, feed * 0.75)

    def test_feed_zeros_skipped_with_skipping(self, arch):
        safs = SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            compute_safs=[skip_compute(["A"])],
        )
        dense, sparse = _sparse(arch, safs)
        reads = sparse.at("Buffer", "A").data_reads
        assert reads.gated == 0
        assert reads.skipped > 0

    def test_metadata_traffic_present(self, arch):
        safs = SAFSpec(formats={("Buffer", "A"): b2, ("DRAM", "A"): b2})
        _dense, sparse = _sparse(arch, safs)
        assert sparse.at("Buffer", "A").metadata_reads.actual > 0
        assert sparse.at("Buffer", "A").metadata_writes.actual > 0

    def test_occupancy_reflects_compression(self, arch):
        safs = SAFSpec(formats={("Buffer", "A"): b2, ("DRAM", "A"): b2})
        _dense, sparse = _sparse(arch, safs)
        a = sparse.at("Buffer", "A")
        assert a.compression_rate > 1.0
        assert a.occupancy_words < 64


class TestSkippingSAFs:
    def test_follower_reads_eliminated(self, arch):
        safs = SAFSpec(storage_safs=[skip_storage("B", ["A"], "Buffer")])
        dense, sparse = _sparse(arch, safs)
        feed = dense.at("Buffer", "B").compute_feed_reads
        reads = sparse.at("Buffer", "B").data_reads
        assert math.isclose(reads.actual, feed * 0.25)
        assert math.isclose(reads.skipped, feed * 0.75)

    def test_gating_keeps_cycles(self, arch):
        safs = SAFSpec(storage_safs=[gate_storage("B", ["A"], "Buffer")])
        dense, sparse = _sparse(arch, safs)
        feed = dense.at("Buffer", "B").compute_feed_reads
        reads = sparse.at("Buffer", "B").data_reads
        assert math.isclose(reads.gated, feed * 0.75)
        assert reads.skipped == 0

    def test_output_updates_at_group_granularity(self, arch):
        """Accumulator flushes survive if any compute in their latch
        group did: with k innermost (latch 8), the flush skips only
        when the whole 8-element A row chunk is empty."""
        safs = SAFSpec(compute_safs=[skip_compute(["A"])])
        dense, sparse = _sparse(arch, safs)
        updates = dense.at("Buffer", "Z").update_writes
        assert updates == 512 / 8  # latched across the k loop
        writes = sparse.at("Buffer", "Z").data_writes
        wl_a = UniformDensity(0.25, 64)
        keep = wl_a.prob_nonempty((1, 8))  # 8-wide A row chunk
        assert math.isclose(writes.actual, updates * keep, rel_tol=1e-6)
        assert math.isclose(
            writes.skipped, updates * (1 - keep), rel_tol=1e-6
        )

    def test_output_updates_pointwise_without_latch(self, arch):
        """With an output-relevant innermost loop there is no latch
        group, so updates classify exactly like computes."""
        safs = SAFSpec(compute_safs=[skip_compute(["A"])])
        dense, sparse = _sparse(
            arch, safs, loops=[Loop("k", 8), Loop("m", 8), Loop("n", 8)]
        )
        updates = dense.at("Buffer", "Z").update_writes
        writes = sparse.at("Buffer", "Z").data_writes
        assert math.isclose(writes.actual, updates * 0.25)

    def test_rmw_reads_subtract_first_writes(self, arch):
        safs = SAFSpec(compute_safs=[skip_compute(["A"])])
        dense, sparse = _sparse(arch, safs)
        z = dense.at("Buffer", "Z")
        expected_rmw = max(
            0.0, z.update_writes * 0.25 - (z.update_writes - z.rmw_reads)
        )
        # Drain reads are unaffected by the compute SAF (no output SAF).
        reads = sparse.at("Buffer", "Z").data_reads
        assert math.isclose(reads.actual, expected_rmw + z.drains)


class TestConservation:
    """Fine-grained actions always partition the dense counts."""

    @pytest.mark.parametrize(
        "safs",
        [
            SAFSpec(),
            SAFSpec(compute_safs=[gate_compute()]),
            SAFSpec(
                formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
                storage_safs=[skip_storage("B", ["A"], "Buffer")],
                compute_safs=[skip_compute(["A"])],
            ),
        ],
    )
    def test_totals_preserved(self, arch, safs):
        dense, sparse = _sparse(arch, safs, densities={"A": 0.3, "B": 0.7})
        for (level, tensor), record in dense.traffic.items():
            actions = sparse.at(level, tensor)
            assert actions.data_reads.total == pytest.approx(
                record.reads, rel=1e-9
            )
            assert actions.data_writes.total == pytest.approx(
                record.writes, rel=1e-9
            )
        assert sparse.compute.total == pytest.approx(dense.computes)
