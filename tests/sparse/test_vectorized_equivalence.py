"""Vectorized-vs-scalar sparse post-processing equivalence.

The batched numpy pipeline must be *bit-identical* to the scalar
oracle path across every bundled design — not approximately equal:
the vectorized expressions mirror the scalar formulas operation for
operation, so any drift is a bug. The suite also proves the engine's
sparse-stage cache and warm parallel workers are behaviour-preserving.
"""

from __future__ import annotations

import pytest

from repro import Evaluator, Workload, matmul
from repro.dataflow.nest_analysis import analyze_dataflow
from repro.designs import codesign, dstc, eyeriss, scnn, stc
from repro.designs.common import conv_as_gemm
from repro.sparse.density import FixedStructuredDensity, UniformDensity
from repro.sparse.postprocess import (
    analyze_sparse,
    analyze_sparse_batch,
    sparse_analysis_key,
)
from repro.workload.nets import alexnet, resnet50


def _tc_workload(weight_model, input_density=0.65):
    layer = resnet50()[10]
    gemm = conv_as_gemm(layer)
    return Workload(
        gemm,
        {
            "A": weight_model,
            "B": UniformDensity(input_density, gemm.tensor_size("B")),
        },
        name=layer.name,
    )


def _conv_workload(densities):
    layer = alexnet()[2]
    return Workload.uniform(layer.spec, densities)


def _design_cases():
    cases = [
        ("eyeriss", eyeriss.eyeriss_design(), _conv_workload({"I": 0.5})),
        (
            "eyeriss-dense",
            eyeriss.dense_eyeriss_design(),
            _conv_workload({"I": 0.5}),
        ),
        (
            "scnn",
            scnn.scnn_design(),
            _conv_workload({"I": 0.4, "W": 0.3}),
        ),
        ("dstc", dstc.dstc_design(), _tc_workload(UniformDensity(0.4, 1024))),
        ("stc", stc.stc_design(), _tc_workload(FixedStructuredDensity(2, 4))),
        (
            "stc-flexible",
            stc.stc_flexible_design(8),
            _tc_workload(FixedStructuredDensity(2, 8)),
        ),
    ]
    mm = Workload.uniform(matmul(256, 256, 256), {"A": 0.06, "B": 0.06})
    for dataflow, saf in codesign.ALL_COMBINATIONS:
        cases.append(
            (
                f"codesign-{dataflow}-{saf}",
                codesign.build_design(dataflow, saf),
                mm,
            )
        )
    return cases


CASES = _design_cases()
CASE_IDS = [name for name, _, _ in CASES]


def assert_breakdown_identical(a, b, context):
    assert (a.actual, a.gated, a.skipped) == (b.actual, b.gated, b.skipped), (
        context,
        a,
        b,
    )


def assert_sparse_identical(vec, scalar):
    assert_breakdown_identical(vec.compute, scalar.compute, "compute")
    assert vec.compute_fractions == scalar.compute_fractions
    assert set(vec.actions) == set(scalar.actions)
    for key in vec.actions:
        va, sa = vec.actions[key], scalar.actions[key]
        for attr in (
            "data_reads",
            "data_writes",
            "metadata_reads",
            "metadata_writes",
        ):
            assert_breakdown_identical(
                getattr(va, attr), getattr(sa, attr), (key, attr)
            )
        assert va.intersection_checks == sa.intersection_checks, key
        assert va.occupancy_words == sa.occupancy_words, key
        assert va.worst_occupancy_words == sa.worst_occupancy_words, key
        assert va.compression_rate == sa.compression_rate, key


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("name,design,workload", CASES, ids=CASE_IDS)
    def test_bit_identical_sparse_traffic(self, name, design, workload):
        mapping = design.mapping_for(workload)
        assert mapping is not None, f"{name} needs a concrete mapping"
        dense = analyze_dataflow(workload, design.arch, mapping)
        vec = analyze_sparse(dense, design.safs, vectorized=True)
        scalar = analyze_sparse(dense, design.safs, vectorized=False)
        assert_sparse_identical(vec, scalar)

    @pytest.mark.parametrize(
        "name,design,workload", CASES[:4], ids=CASE_IDS[:4]
    )
    def test_full_pipeline_identical(self, name, design, workload):
        """End to end: cycles/energy through the engine match exactly."""
        vec = Evaluator(cache=None, sparse_vectorized=True)
        scalar = Evaluator(cache=None, sparse_vectorized=False)
        a = vec.evaluate(design, workload)
        b = scalar.evaluate(design, workload)
        assert a.cycles == b.cycles
        assert a.energy_pj == b.energy_pj
        assert a.edp == b.edp


class TestStackedBatchEquivalence:
    """One emitter stacking *many* analyses must change nothing."""

    def _pairs(self):
        pairs = []
        for name, design, workload in CASES:
            mapping = design.mapping_for(workload)
            dense = analyze_dataflow(workload, design.arch, mapping)
            pairs.append((name, dense, design.safs))
        return pairs

    def test_stacked_batch_is_bit_identical_per_analysis(self):
        """Every bundled design's flows recorded into ONE shared batch
        emitter and flushed in a single stacked numpy pass — each
        result must match its individually-evaluated counterpart
        bit for bit (both against the vectorized single-nest path and
        the scalar oracle)."""
        pairs = self._pairs()
        stacked = analyze_sparse_batch(
            [(dense, safs) for _, dense, safs in pairs], vectorized=True
        )
        for (name, dense, safs), batch_result in zip(pairs, stacked):
            single = analyze_sparse(dense, safs, vectorized=True)
            oracle = analyze_sparse(dense, safs, vectorized=False)
            assert_sparse_identical(batch_result, single)
            assert_sparse_identical(batch_result, oracle)

    def test_scalar_backend_falls_back_per_analysis(self):
        pairs = self._pairs()[:3]
        scalar = analyze_sparse_batch(
            [(dense, safs) for _, dense, safs in pairs], vectorized=False
        )
        for (name, dense, safs), result in zip(pairs, scalar):
            assert_sparse_identical(
                result, analyze_sparse(dense, safs, vectorized=False)
            )

    def test_empty_batch(self):
        assert analyze_sparse_batch([]) == []


class TestSparseStageCache:
    def _design_and_workload(self):
        design = codesign.build_design("ReuseAZ", "InnermostSkip")
        workload = Workload.uniform(
            matmul(128, 128, 128), {"A": 0.1, "B": 0.1}
        )
        return design, workload

    def test_key_is_stable_and_content_addressed(self):
        design, workload = self._design_and_workload()
        mapping = design.mapping_for(workload)
        dense = analyze_dataflow(workload, design.arch, mapping)
        key1 = sparse_analysis_key(dense, design.safs)
        # A different workload object with identical content produces
        # the same key; a different density does not.
        same = Workload.uniform(matmul(128, 128, 128), {"A": 0.1, "B": 0.1})
        dense_same = analyze_dataflow(same, design.arch, mapping)
        assert sparse_analysis_key(dense_same, design.safs) == key1
        other = Workload.uniform(matmul(128, 128, 128), {"A": 0.2, "B": 0.1})
        dense_other = analyze_dataflow(other, design.arch, mapping)
        assert sparse_analysis_key(dense_other, design.safs) != key1
        # ...and a different SAF spec does not either.
        other_safs = codesign.build_design("ReuseAZ", "HierarchicalSkip").safs
        assert sparse_analysis_key(dense, other_safs) != key1

    def test_hits_reuse_whole_sparse_analysis(self):
        design, workload = self._design_and_workload()
        evaluator = Evaluator()
        first = evaluator.evaluate(design, workload)
        second = evaluator.evaluate(design, workload)
        assert evaluator.sparse_cache.hits >= 1
        # The cached SparseTraffic is returned as-is.
        assert first.sparse is second.sparse
        cold = Evaluator(cache=None).evaluate(design, workload)
        assert first.cycles == cold.cycles
        assert first.energy_pj == cold.energy_pj

    def test_saf_sweep_reuses_across_density_revisits(self):
        """The Fig.17 pattern: sweeping SAFs x densities revisits the
        same (mapping, SAF, density) points; the sparse stage serves
        the revisits."""
        evaluator = Evaluator()
        workload_for = lambda d: Workload.uniform(  # noqa: E731
            matmul(128, 128, 128), {"A": d, "B": d}
        )
        for _round in range(2):
            for density in (0.01, 0.1):
                for dataflow, saf in codesign.ALL_COMBINATIONS:
                    evaluator.evaluate(
                        codesign.build_design(dataflow, saf),
                        workload_for(density),
                    )
        stats = evaluator.sparse_cache.stats()
        assert stats["hits"] >= stats["misses"]


class TestWarmWorkersMatchColdSerial:
    def _jobs(self):
        jobs = []
        for density in (0.05, 0.3):
            wl = Workload.uniform(
                matmul(128, 128, 128), {"A": density, "B": density}
            )
            for dataflow, saf in codesign.ALL_COMBINATIONS:
                jobs.append((codesign.build_design(dataflow, saf), wl))
        return jobs

    def test_warm_parallel_equals_cold_serial(self):
        jobs = self._jobs()
        cold = Evaluator(cache=None)
        expected = [cold.evaluate(*job) for job in jobs]

        warm = Evaluator()
        # Warm the parent cache first so workers actually receive
        # shipped entries, then fan out.
        warm.evaluate_many(jobs)
        results = warm.evaluate_many(jobs, parallel=2)

        assert len(results) == len(expected)
        for got, want in zip(results, expected):
            assert got.design_name == want.design_name
            assert got.cycles == want.cycles
            assert got.energy_pj == want.energy_pj
            assert got.edp == want.edp
            assert got.sparse.compute.actual == want.sparse.compute.actual

    def test_warm_parallel_search_equals_cold_serial(self):
        from repro import Design, SAFSpec
        from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
        from repro.mapping.mapspace import MapspaceConstraints

        arch = Architecture(
            "warm-dse",
            [
                StorageLevel("DRAM", None, component="dram",
                             read_bandwidth=8, write_bandwidth=8),
                StorageLevel("Buffer", 16 * 1024, component="sram",
                             read_bandwidth=8, write_bandwidth=8),
            ],
            ComputeLevel("MAC", instances=16),
        )
        constraints = MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]})
        design = Design("d", arch, SAFSpec(), constraints=constraints)
        workload = Workload.uniform(matmul(64, 64, 64), {"A": 0.2, "B": 0.2})

        cold = Evaluator(cache=None, search_budget=16).search_mappings(
            design, workload
        )
        warm = Evaluator(search_budget=16)
        warm.search_mappings(design, workload)  # populate parent cache
        parallel = warm.search_mappings(design, workload, parallel=2)
        assert cold is not None and parallel is not None
        assert cold.cycles == parallel.cycles
        assert cold.energy_pj == parallel.energy_pj
        assert cold.dense.mapping.cache_key() == parallel.dense.mapping.cache_key()
