"""Tests for the gating/skipping analyzer, especially the Fig. 10
mapping-dependent leader-tile semantics."""

import math

import pytest

from repro import Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.dataflow import analyze_dataflow
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.sparse.gating_skipping import (
    EliminationSource,
    FlowClassification,
    GatingSkippingAnalyzer,
)
from repro.sparse.saf import (
    SAFKind,
    SAFSpec,
    gate_compute,
    gate_storage,
    skip_compute,
    skip_storage,
)


@pytest.fixture
def arch():
    return Architecture(
        "a",
        [StorageLevel("Backing", None), StorageLevel("Buffer", 65536)],
        ComputeLevel("MAC"),
    )


def _analyzer(arch, mapping_loops, safs, densities=None):
    wl = Workload.uniform(
        matmul(4, 4, 4), densities or {"A": 0.25, "B": 0.5}
    )
    mapping = Mapping(
        [
            LevelMapping("Backing", mapping_loops[0]),
            LevelMapping("Buffer", mapping_loops[1]),
        ]
    )
    dense = analyze_dataflow(wl, arch, mapping)
    return GatingSkippingAnalyzer(dense, safs)


class TestFlowClassification:
    def test_no_sources(self):
        cls = FlowClassification.from_sources([])
        assert (cls.actual, cls.gated, cls.skipped) == (1.0, 0.0, 0.0)

    def test_single_skip(self):
        src = EliminationSource(SAFKind.SKIP, "A", keep=0.25)
        cls = FlowClassification.from_sources([src])
        assert math.isclose(cls.skipped, 0.75)
        assert math.isclose(cls.actual, 0.25)

    def test_independent_leaders_multiply(self):
        srcs = [
            EliminationSource(SAFKind.SKIP, "A", keep=0.5),
            EliminationSource(SAFKind.SKIP, "B", keep=0.5),
        ]
        cls = FlowClassification.from_sources(srcs)
        assert math.isclose(cls.actual, 0.25)

    def test_same_leader_nested_takes_min(self):
        srcs = [
            EliminationSource(SAFKind.SKIP, "A", keep=0.5),
            EliminationSource(SAFKind.SKIP, "A", keep=0.3),
        ]
        cls = FlowClassification.from_sources(srcs)
        assert math.isclose(cls.actual, 0.3)

    def test_gate_applies_to_skip_remainder(self):
        srcs = [
            EliminationSource(SAFKind.SKIP, "A", keep=0.5),
            EliminationSource(SAFKind.GATE, "B", keep=0.6),
        ]
        cls = FlowClassification.from_sources(srcs)
        assert math.isclose(cls.skipped, 0.5)
        assert math.isclose(cls.gated, 0.5 * 0.4)
        assert math.isclose(cls.actual, 0.5 * 0.6)

    def test_gate_nested_in_skip_same_leader(self):
        srcs = [
            EliminationSource(SAFKind.SKIP, "A", keep=0.5),
            EliminationSource(SAFKind.GATE, "A", keep=0.5),
        ]
        cls = FlowClassification.from_sources(srcs)
        # The gate cannot remove what the skip already removed.
        assert math.isclose(cls.gated, 0.0)

    def test_fractions_sum_to_one(self):
        srcs = [
            EliminationSource(SAFKind.SKIP, "A", keep=0.3),
            EliminationSource(SAFKind.GATE, "B", keep=0.7),
            EliminationSource(SAFKind.SKIP, "C", keep=0.9),
        ]
        cls = FlowClassification.from_sources(srcs)
        assert math.isclose(cls.actual + cls.gated + cls.skipped, 1.0)


class TestLeaderTiles:
    """Fig. 10: the same SAF has different impact under two mappings."""

    def test_mapping1_pointwise_leader(self, arch):
        # Innermost k loop: B pairs with a single A value.
        safs = SAFSpec(storage_safs=[skip_storage("B", ["A"], "Buffer")])
        analyzer = _analyzer(
            arch,
            ([], [[Loop("m", 4), Loop("n", 4), Loop("k", 4)][i] for i in range(3)]),
            safs,
        )
        b = analyzer.einsum.tensor("B")
        extents = analyzer.compute_feed_extents(b)
        assert extents == {}
        cls = analyzer.classify_flow(b, "Buffer")
        # keep = P(single A element nonzero) = density.
        assert math.isclose(cls.skipped, 0.75)

    def test_mapping2_column_leader(self, arch):
        # Innermost m loop: B reused across a column of A.
        safs = SAFSpec(storage_safs=[skip_storage("B", ["A"], "Buffer")])
        analyzer = _analyzer(
            arch,
            ([], [Loop("k", 4), Loop("n", 4), Loop("m", 4)]),
            safs,
        )
        b = analyzer.einsum.tensor("B")
        assert analyzer.compute_feed_extents(b) == {"m": 4}
        cls = analyzer.classify_flow(b, "Buffer")
        # Eliminated only when the whole 4-element column is empty.
        a_model = analyzer.workload.density_of("A")
        expected = a_model.prob_empty((4, 1))
        assert math.isclose(cls.skipped, expected)
        # Column-empty is rarer than element-empty: fewer savings.
        assert cls.skipped < 0.75

    def test_transfer_granularity_coarser_than_feed(self, arch):
        # SAF at the Backing store sees tile-sized leaders.
        safs = SAFSpec(storage_safs=[skip_storage("B", ["A"], "Backing")])
        analyzer = _analyzer(
            arch,
            ([Loop("n", 2)], [Loop("m", 4), Loop("n", 2), Loop("k", 4)]),
            safs,
        )
        b = analyzer.einsum.tensor("B")
        extents = analyzer.transfer_extents(b, "Buffer")
        # The buffer's B tile is reused across the whole m range.
        assert extents["m"] == 4
        cls_transfer = analyzer.classify_flow(b, "Backing")
        assert cls_transfer.skipped < 0.75


class TestComputeClassification:
    def test_gate_compute_all_operands(self, arch):
        safs = SAFSpec(compute_safs=[gate_compute()])
        analyzer = _analyzer(
            arch, ([], [Loop("m", 4), Loop("n", 4), Loop("k", 4)]), safs
        )
        cls = analyzer.classify_compute()
        assert math.isclose(cls.actual, 0.25 * 0.5)
        assert math.isclose(cls.gated, 1 - 0.125)
        assert cls.skipped == 0.0

    def test_skip_compute_single_operand(self, arch):
        safs = SAFSpec(compute_safs=[skip_compute(["A"])])
        analyzer = _analyzer(
            arch, ([], [Loop("m", 4), Loop("n", 4), Loop("k", 4)]), safs
        )
        cls = analyzer.classify_compute()
        assert math.isclose(cls.skipped, 0.75)
        assert math.isclose(cls.actual, 0.25)

    def test_storage_skip_implies_compute_skip(self, arch):
        safs = SAFSpec(storage_safs=[skip_storage("B", ["A"], "Buffer")])
        analyzer = _analyzer(
            arch, ([], [Loop("m", 4), Loop("n", 4), Loop("k", 4)]), safs
        )
        cls = analyzer.classify_compute()
        # B's reads skipped when A zero -> those computes skip too.
        assert math.isclose(cls.skipped, 0.75)

    def test_storage_gate_implies_compute_gate(self, arch):
        safs = SAFSpec(storage_safs=[gate_storage("B", ["A"], "Buffer")])
        analyzer = _analyzer(
            arch, ([], [Loop("m", 4), Loop("n", 4), Loop("k", 4)]), safs
        )
        cls = analyzer.classify_compute()
        assert math.isclose(cls.gated, 0.75)
        assert cls.skipped == 0.0

    def test_dense_design_all_actual(self, arch):
        analyzer = _analyzer(
            arch,
            ([], [Loop("m", 4), Loop("n", 4), Loop("k", 4)]),
            SAFSpec(),
        )
        cls = analyzer.classify_compute()
        assert cls.actual == 1.0
