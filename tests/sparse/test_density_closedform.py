"""Closed-form density kernels vs the scipy reference implementation.

The library computes hypergeometric/binomial statistics with cached
log-gamma kernels (no scipy at runtime); these tests pin them against
``scipy.stats`` within 1e-9 over a parameter grid covering every regime
the models query: tiny fibers, hyper-sparse tensors, dense tensors,
full-tensor draws. scipy is a test-only dependency.

Beyond ~1e5 positions scipy's own log-gamma noise exceeds 1e-9 (it
disagrees with exact rational arithmetic there), so the grid tops out
at 65536 — large enough to cover every fiber/tile size the analyzers
produce for the paper's workloads.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

scipy_stats = pytest.importorskip(
    "scipy.stats", reason="scipy is the (optional) reference implementation"
)
scipy_binom = scipy_stats.binom
scipy_hypergeom = scipy_stats.hypergeom

from repro.sparse.density import (
    FixedStructuredDensity,
    UniformDensity,
    binom_distribution,
    binom_pmf,
    hypergeom_distribution,
    hypergeom_pmf,
    hypergeom_prob_empty,
)

TOTALS = [1, 2, 3, 5, 17, 64, 100, 1024, 4096, 65536]
NNZ_FRACTIONS = [0.0, 0.001, 0.05, 0.25, 0.5, 0.9, 1.0]
DRAW_FRACTIONS = [0.001, 0.1, 0.5, 1.0]


def assert_close(mine: float, ref: float) -> None:
    assert mine == pytest.approx(ref, rel=1e-9, abs=1e-12), (mine, ref)


def _grid():
    for total in TOTALS:
        for nnz_frac in NNZ_FRACTIONS:
            nnz = int(round(total * nnz_frac))
            for draw_frac in DRAW_FRACTIONS:
                draws = max(1, int(round(total * draw_frac)))
                yield total, nnz, draws


class TestHypergeomKernel:
    @pytest.mark.parametrize("total,nnz,draws", list(_grid()))
    def test_pmf_matches_scipy(self, total, nnz, draws):
        lo = max(0, draws - (total - nnz))
        hi = min(nnz, draws)
        step = max(1, (hi - lo) // 7)
        for k in range(lo, hi + 1, step):
            assert_close(
                hypergeom_pmf(k, total, nnz, draws),
                float(scipy_hypergeom.pmf(k, total, nnz, draws)),
            )

    @pytest.mark.parametrize("total,nnz,draws", list(_grid()))
    def test_prob_empty_matches_scipy(self, total, nnz, draws):
        assert_close(
            hypergeom_prob_empty(total, nnz, draws),
            float(scipy_hypergeom.pmf(0, total, nnz, draws)),
        )

    def test_out_of_support_is_zero(self):
        assert hypergeom_pmf(5, 10, 4, 4) == 0.0
        assert hypergeom_pmf(-1, 10, 4, 4) == 0.0
        # Drawing more than the zero count forces a nonzero.
        assert hypergeom_prob_empty(10, 4, 7) == 0.0

    def test_distribution_sums_to_one(self):
        for total, nnz, draws in [(100, 30, 10), (64, 1, 64), (17, 17, 5)]:
            pairs = hypergeom_distribution(total, nnz, draws)
            assert math.isclose(sum(p for _, p in pairs), 1.0, rel_tol=1e-9)

    @given(
        total=st.integers(min_value=1, max_value=2000),
        nnz_frac=st.floats(min_value=0.0, max_value=1.0),
        draw_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_prob_empty_property(self, total, nnz_frac, draw_frac):
        nnz = int(round(total * nnz_frac))
        draws = max(1, int(round(total * draw_frac)))
        assert_close(
            hypergeom_prob_empty(total, nnz, draws),
            float(scipy_hypergeom.pmf(0, total, nnz, draws)),
        )


class TestBinomKernel:
    @pytest.mark.parametrize("size", [1, 2, 7, 64, 1000])
    @pytest.mark.parametrize("density", [0.0, 0.01, 0.2, 0.5, 0.99, 1.0])
    def test_pmf_matches_scipy(self, size, density):
        for k in range(0, size + 1, max(1, size // 7)):
            assert_close(
                binom_pmf(k, size, density),
                float(scipy_binom.pmf(k, size, density)),
            )

    def test_distribution_sums_to_one(self):
        pairs = binom_distribution(64, 0.3)
        assert math.isclose(sum(p for _, p in pairs), 1.0, rel_tol=1e-9)


class TestUniformDensityVsScipy:
    """The model-level API must match the former scipy implementation."""

    @pytest.mark.parametrize("tensor_size", [16, 100, 4096, 65536])
    @pytest.mark.parametrize("density", [0.01, 0.2, 0.5, 0.9])
    def test_prob_empty(self, tensor_size, density):
        model = UniformDensity(density, tensor_size)
        nnz = int(round(tensor_size * density))
        for tile in [1, 2, tensor_size // 3 or 1, tensor_size]:
            tile = min(tile, tensor_size)
            assert_close(
                model.prob_empty(tile),
                float(scipy_hypergeom.pmf(0, tensor_size, nnz, tile)),
            )

    def test_expected_and_max_occupancy(self):
        model = UniformDensity(0.25, 1024)
        assert model.expected_occupancy(64) == 64 * 0.25
        assert model.max_occupancy(64) == 64
        assert model.max_occupancy(1024) == 256  # bounded by nnz
        assert model.max_occupancy(2048) == 256

    def test_occupancy_distribution_matches_scipy(self):
        model = UniformDensity(0.3, 200)
        pairs = dict(model.occupancy_distribution(20))
        nnz = int(round(200 * 0.3))
        for k, p in pairs.items():
            assert_close(p, float(scipy_hypergeom.pmf(k, 200, nnz, 20)))
        assert math.isclose(sum(pairs.values()), 1.0, rel_tol=1e-9)

    def test_binomial_limit_distribution(self):
        model = UniformDensity(0.4)  # no tensor_size: binomial limit
        pairs = dict(model.occupancy_distribution(16))
        for k, p in pairs.items():
            assert_close(p, float(scipy_binom.pmf(k, 16, 0.4)))


class TestStructuredDensityVsScipy:
    def test_partial_block_is_hypergeometric(self):
        model = FixedStructuredDensity(2, 4)
        # A 3-element tile inside one block of 4 holding 2 nonzeros.
        assert_close(
            model.prob_empty(3), float(scipy_hypergeom.pmf(0, 4, 2, 3))
        )
        pairs = dict(model.occupancy_distribution(3))
        for k, p in pairs.items():
            assert_close(p, float(scipy_hypergeom.pmf(k, 4, 2, 3)))


class TestKernelCaching:
    def test_repeated_queries_hit_cache(self):
        before = hypergeom_prob_empty.cache_info().hits
        for _ in range(5):
            hypergeom_prob_empty(123457, 1000, 321)
        after = hypergeom_prob_empty.cache_info().hits
        assert after >= before + 4
