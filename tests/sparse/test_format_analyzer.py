"""Tests for the format analyzer: tile occupancy and compression."""

import math

import numpy as np
import pytest

from repro.sparse.density import ActualDataDensity, UniformDensity
from repro.sparse.format_analyzer import analyze_tile_format
from repro.sparse.formats import (
    Bitmask,
    CoordinatePayload,
    FormatRank,
    FormatSpec,
    RunLengthEncoding,
    classic_format,
    dense_format,
)


class TestDense:
    def test_dense_tile_no_overhead(self):
        occ = analyze_tile_format(
            dense_format(2), (8, 8), UniformDensity(0.5, 64)
        )
        assert occ.payload_words == 64
        assert occ.metadata_bits == 0
        assert occ.compression_rate(16) == 1.0


class TestBitmaskFormat:
    def test_metadata_independent_of_density(self):
        fmt = FormatSpec([FormatRank(Bitmask(), flattened_ranks=2)])
        sparse = analyze_tile_format(fmt, (8, 8), UniformDensity(0.1, 64))
        dense = analyze_tile_format(fmt, (8, 8), UniformDensity(0.9, 64))
        assert sparse.metadata_bits == dense.metadata_bits == 64

    def test_payload_scales_with_density(self):
        fmt = FormatSpec([FormatRank(Bitmask(), flattened_ranks=2)])
        occ = analyze_tile_format(fmt, (8, 8), UniformDensity(0.25, 64))
        assert math.isclose(occ.payload_words, 16.0)

    def test_compression_beats_dense_when_sparse(self):
        fmt = FormatSpec([FormatRank(Bitmask(), flattened_ranks=2)])
        occ = analyze_tile_format(fmt, (8, 8), UniformDensity(0.25, 64))
        assert occ.compression_rate(16) > 1.0


class TestCSR:
    def test_csr_structure(self):
        density = UniformDensity(0.25, 64)
        occ = analyze_tile_format(classic_format("CSR"), (8, 8), density)
        # Payload = expected nonzeros.
        assert math.isclose(occ.payload_words, 16.0)
        # UOP row pointers + CP column ids for each nonzero.
        uop, cp = occ.per_rank
        assert uop.format_name == "UOP"
        assert uop.metadata_bits >= 9  # (8+1) offsets
        assert cp.format_name == "CP"
        assert math.isclose(cp.metadata_bits, 16 * 3)  # 3b columns

    def test_worst_case_exceeds_expected(self):
        density = UniformDensity(0.25, 4096)
        occ = analyze_tile_format(classic_format("CSR"), (16, 16), density)
        assert occ.worst_payload_words > occ.payload_words


class TestHierarchicalPruning:
    def test_empty_rows_prune_lower_rank(self):
        # With hypergeometric stats some rows are empty; CP at the
        # row rank stores fewer fibers than the full row count.
        fmt = FormatSpec(
            [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
        )
        density = UniformDensity(0.05, 256)
        occ = analyze_tile_format(fmt, (16, 16), density)
        row_rank = occ.per_rank[0]
        assert row_rank.nonempty_elements < 16

    def test_uncompressed_outer_keeps_all_fibers(self):
        fmt = FormatSpec(
            [FormatRank(Bitmask()), FormatRank(RunLengthEncoding(4))]
        )
        density = UniformDensity(0.5, 64)
        occ = analyze_tile_format(fmt, (8, 8), density)
        # The RLE rank sees 'stored fibers' = nonempty rows only
        # (bitmask prunes), but metadata for rank0 covers all 8.
        assert occ.per_rank[0].metadata_bits == 8


class TestActualDataAgreement:
    def test_payload_matches_exact_nnz(self):
        data = np.zeros((8, 8))
        data[0, :4] = 1.0
        model = ActualDataDensity(data)
        occ = analyze_tile_format(classic_format("CSR"), (8, 8), model)
        assert math.isclose(occ.payload_words, 4.0)

    def test_metadata_bits_per_element(self):
        data = np.zeros((4, 4))
        data[0, 0] = 1.0
        occ = analyze_tile_format(
            classic_format("CSR"), (4, 4), ActualDataDensity(data)
        )
        assert occ.metadata_bits_per_element() == occ.metadata_bits / 16
