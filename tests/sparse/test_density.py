"""Tests for the statistical density models, including the Fig. 9
hypergeometric behaviour and agreement with actual data."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import hypergeom

from repro.common.errors import SpecError
from repro.sparse.density import (
    ActualDataDensity,
    BandedDensity,
    FixedStructuredDensity,
    UniformDensity,
    effectual_compute_fraction,
    intersection_nonempty_probability,
)
from repro.tensor.generator import banded_matrix, uniform_random_tensor


class TestUniform:
    def test_prob_empty_hypergeometric(self):
        # Fig. 9 setup: 50% dense tensor, exact finite-size model.
        model = UniformDensity(0.5, tensor_size=64)
        expected = hypergeom.pmf(0, 64, 32, 4)
        assert math.isclose(model.prob_empty(4), expected, rel_tol=1e-12)

    def test_prob_empty_infinite_limit(self):
        model = UniformDensity(0.25)
        assert math.isclose(model.prob_empty(3), 0.75**3)

    def test_fig9_shape_one(self):
        model = UniformDensity(0.5, tensor_size=1024)
        # A single element is empty with probability 1 - density.
        assert math.isclose(model.prob_empty(1), 0.5, rel_tol=1e-3)

    def test_fig9_variance_shrinks_with_shape(self):
        # Bigger fibers have tighter density distributions.
        model = UniformDensity(0.5, tensor_size=4096)
        def spread(shape):
            dist = model.occupancy_distribution(shape)
            mean = sum(k * p for k, p in dist)
            var = sum((k - mean) ** 2 * p for k, p in dist)
            return math.sqrt(var) / shape  # density std
        assert spread(64) < spread(16) < spread(4)

    def test_expected_occupancy(self):
        model = UniformDensity(0.3, tensor_size=100)
        assert math.isclose(model.expected_occupancy(10), 3.0)

    def test_distribution_sums_to_one(self):
        model = UniformDensity(0.4, tensor_size=50)
        total = sum(p for _k, p in model.occupancy_distribution(8))
        assert math.isclose(total, 1.0, rel_tol=1e-9)

    def test_max_occupancy_bounded_by_nnz(self):
        model = UniformDensity(0.1, tensor_size=100)
        assert model.max_occupancy(50) == 10

    def test_quantile_between_mean_and_max(self):
        model = UniformDensity(0.3, tensor_size=1000)
        q = model.quantile_occupancy(100)
        assert 30.0 <= q <= model.max_occupancy(100)

    def test_zero_density(self):
        model = UniformDensity(0.0, tensor_size=16)
        assert model.prob_empty(4) == 1.0
        assert model.expected_occupancy(4) == 0.0

    def test_rejects_bad_density(self):
        with pytest.raises(SpecError):
            UniformDensity(1.2)

    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=30)
    def test_matches_monte_carlo(self, tile, density):
        """P(empty) from the model matches empirical tiling stats."""
        size = 240
        model = UniformDensity(density, tensor_size=size)
        empties = 0
        trials = 300
        for seed in range(trials):
            t = uniform_random_tensor((size,), density, seed=seed)
            empties += int(np.count_nonzero(t[:tile]) == 0)
        # A coarse bound: the model is exact, sampling is noisy.
        assert abs(empties / trials - model.prob_empty(tile)) < 0.12


class TestFixedStructured:
    def test_density(self):
        assert FixedStructuredDensity(2, 4).density == 0.5

    def test_aligned_tiles_deterministic(self):
        model = FixedStructuredDensity(2, 4)
        assert model.occupancy_distribution(8) == [(4, 1.0)]
        assert model.prob_empty(8) == 0.0

    def test_partial_block_hypergeometric(self):
        model = FixedStructuredDensity(2, 4)
        expected = hypergeom.pmf(0, 4, 2, 2)
        assert math.isclose(model.prob_empty(2), expected)

    def test_max_occupancy_partial(self):
        model = FixedStructuredDensity(2, 4)
        assert model.max_occupancy(3) == 2
        assert model.max_occupancy(9) == 2 * 2 + 1

    def test_2to8_speed_ratio_inputs(self):
        assert FixedStructuredDensity(2, 8).density == 0.25

    def test_empty_structure(self):
        assert FixedStructuredDensity(0, 4).prob_empty(16) == 1.0

    def test_rejects_infeasible(self):
        with pytest.raises(SpecError):
            FixedStructuredDensity(5, 4)

    def test_matches_generated_data(self):
        from repro.tensor.generator import structured_sparse_matrix

        t = structured_sparse_matrix(16, 32, 2, 4, seed=0)
        model = FixedStructuredDensity(2, 4)
        # Every aligned block of 4 holds exactly 2.
        blocks = t.reshape(-1, 4)
        assert np.all(np.count_nonzero(blocks, axis=1) == 2)
        assert math.isclose(
            model.expected_occupancy(4), 2.0
        )


class TestBanded:
    def test_density_counts_band(self):
        model = BandedDensity(4, 4, band_width=0)
        assert math.isclose(model.density, 4 / 16)

    def test_off_band_tiles_empty(self):
        model = BandedDensity(16, 16, band_width=1)
        assert model.tile_prob_empty((0, 8), (4, 4)) == 1.0
        assert model.tile_prob_empty((0, 0), (4, 4)) == 0.0

    def test_average_prob_empty_between_extremes(self):
        model = BandedDensity(16, 16, band_width=1)
        avg = model.prob_empty((4, 4))
        assert 0.0 < avg < 1.0

    def test_fill_density_scales_occupancy(self):
        full = BandedDensity(16, 16, 2, fill_density=1.0)
        half = BandedDensity(16, 16, 2, fill_density=0.5)
        assert math.isclose(
            half.expected_occupancy((4, 4)),
            full.expected_occupancy((4, 4)) / 2,
        )

    def test_matches_generated_band(self):
        model = BandedDensity(32, 32, band_width=2)
        data = banded_matrix(32, 32, band_width=2, seed=0)
        assert math.isclose(
            model.density, np.count_nonzero(data) / data.size
        )


class TestActualData:
    def test_exact_density(self):
        data = uniform_random_tensor((8, 8), 0.25, seed=0)
        model = ActualDataDensity(data)
        assert math.isclose(model.density, 0.25)

    def test_exact_tile_stats(self):
        data = np.array([[1, 0, 0, 0], [0, 0, 0, 0]])
        model = ActualDataDensity(data)
        assert model.prob_empty((1, 2)) == 3 / 4
        assert model.max_occupancy((1, 2)) == 1

    def test_distribution_matches_enumeration(self):
        data = uniform_random_tensor((8, 8), 0.5, seed=3)
        model = ActualDataDensity(data)
        dist = dict(model.occupancy_distribution((2, 2)))
        assert math.isclose(sum(dist.values()), 1.0)
        mean = sum(k * p for k, p in dist.items())
        assert math.isclose(mean, model.expected_occupancy((2, 2)))

    def test_scalar_shape_is_row_run(self):
        data = np.array([[1, 1, 0, 0], [0, 0, 0, 0]])
        model = ActualDataDensity(data)
        # Tiles of 1x2: [1,1],[0,0],[0,0],[0,0].
        assert model.prob_empty(2) == 3 / 4

    def test_rejects_empty(self):
        with pytest.raises(SpecError):
            ActualDataDensity(np.zeros((0,)))

    def test_cache_key_is_content_addressed(self):
        data = uniform_random_tensor((8, 8), 0.25, seed=0)
        a = ActualDataDensity(data)
        b = ActualDataDensity(data.copy())  # same content, new array
        assert a.cache_key() is not None
        assert a.cache_key() == b.cache_key()
        # Repeated calls reuse the computed digest.
        assert a.cache_key() is a.cache_key()

    def test_cache_key_distinguishes_content_shape_dtype(self):
        base = uniform_random_tensor((8, 8), 0.25, seed=0)
        key = ActualDataDensity(base).cache_key()
        changed = base.copy()
        changed[0, 0] = 0.0 if changed[0, 0] else 1.0
        assert ActualDataDensity(changed).cache_key() != key
        assert (
            ActualDataDensity(base.reshape(4, 16)).cache_key() != key
        )
        assert (
            ActualDataDensity(base.astype(np.float32)).cache_key() != key
        )

    def test_participates_in_tile_format_memo(self):
        from repro.sparse.format_analyzer import (
            analyze_tile_format,
            clear_tile_format_cache,
        )
        from repro.sparse.formats import (
            CoordinatePayload,
            FormatRank,
            FormatSpec,
        )

        clear_tile_format_cache()
        data = uniform_random_tensor((8, 8), 0.25, seed=1)
        fmt = FormatSpec(
            [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
        )
        first = analyze_tile_format(fmt, (4, 4), ActualDataDensity(data))
        second = analyze_tile_format(
            fmt, (4, 4), ActualDataDensity(data.copy())
        )
        # Two distinct model objects over the same content hit the memo.
        assert first is second


class TestCombinators:
    def test_intersection_probability(self):
        a = UniformDensity(0.5)
        b = UniformDensity(0.5)
        assert math.isclose(
            intersection_nonempty_probability(a, b, 1), 0.25
        )

    def test_effectual_fraction(self):
        models = [UniformDensity(0.5), UniformDensity(0.4)]
        assert math.isclose(effectual_compute_fraction(models), 0.2)

    def test_effectual_fraction_empty(self):
        assert effectual_compute_fraction([]) == 1.0
