"""Hand-validated tests for the dense dataflow (Timeloop-lite) step.

Every expected number here was derived by hand from the stationarity
model; these tests pin the core semantics the whole framework rests on.
"""

import pytest

from repro import Workload, matmul, conv2d
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.dataflow import analyze_dataflow
from repro.mapping.mapping import LevelMapping, Loop, Mapping


@pytest.fixture
def arch():
    return Architecture(
        "a",
        [StorageLevel("DRAM", None), StorageLevel("Buffer", 65536)],
        ComputeLevel("MAC", instances=16),
    )


def _wl():
    return Workload.uniform(matmul(8, 8, 8), {"A": 0.5, "B": 0.5})


def _map(dram, buffer_t, buffer_s=()):
    return Mapping(
        [
            LevelMapping("DRAM", dram),
            LevelMapping("Buffer", buffer_t, list(buffer_s)),
        ]
    )


class TestFlatMapping:
    """All loops at the Buffer: tensors loaded once, full reuse."""

    def _traffic(self, arch):
        m = _map([], [Loop("m", 8), Loop("k", 8), Loop("n", 8)])
        return analyze_dataflow(_wl(), arch, m)

    def test_computes(self, arch):
        assert self._traffic(arch).computes == 512

    def test_operands_loaded_once(self, arch):
        t = self._traffic(arch)
        assert t.at("Buffer", "A").fills == 64
        assert t.at("Buffer", "B").fills == 64
        assert t.at("DRAM", "A").reads == 64

    def test_compute_feed_reads(self, arch):
        t = self._traffic(arch)
        # Innermost loop n is irrelevant to A: the latch holds each A
        # element for 8 cycles -> 512/8 reads.
        assert t.at("Buffer", "A").compute_feed_reads == 64
        # n is relevant to B: a read per compute.
        assert t.at("Buffer", "B").compute_feed_reads == 512

    def test_output_accumulation(self, arch):
        t = self._traffic(arch)
        z = t.at("Buffer", "Z")
        # Innermost n relevant to Z -> no accumulator latch.
        assert z.update_writes == 512
        assert z.rmw_reads == 512 - 64
        assert z.drains == 64
        assert t.at("DRAM", "Z").writes == 64


class TestKSplit:
    """Reduction dim split at DRAM: Z stationary, operands refetched."""

    def _traffic(self, arch):
        m = _map(
            [Loop("k", 2)],
            [Loop("m", 8), Loop("k", 4), Loop("n", 8)],
        )
        return analyze_dataflow(_wl(), arch, m)

    def test_operands_refetched(self, arch):
        t = self._traffic(arch)
        assert t.at("Buffer", "A").episodes == 2
        assert t.at("Buffer", "A").fills == 64  # 32-word tile x2
        assert t.at("Buffer", "B").fills == 64

    def test_output_stationary_across_reduction(self, arch):
        t = self._traffic(arch)
        z = t.at("Buffer", "Z")
        # k1 is irrelevant to Z and innermost-outside: no episodes.
        assert z.episodes == 1
        assert z.refill_writes == 0
        assert z.drains == 64


class TestRevisit:
    """k outer, m inner at DRAM: output tiles drained and refilled."""

    def _traffic(self, arch):
        m = _map(
            [Loop("k", 2), Loop("m", 2)],
            [Loop("m", 4), Loop("k", 4), Loop("n", 8)],
        )
        return analyze_dataflow(_wl(), arch, m)

    def test_episode_counts(self, arch):
        z = self._traffic(arch).at("Buffer", "Z")
        assert z.episodes == 4
        assert z.distinct == 2

    def test_drain_and_refill_traffic(self, arch):
        t = self._traffic(arch)
        z = t.at("Buffer", "Z")
        assert z.drains == 128  # 32-word tile x 4 episodes
        assert z.refill_writes == 64  # 2 revisited episodes
        assert t.at("DRAM", "Z").writes == 128
        assert t.at("DRAM", "Z").reads == 64  # refill serving


class TestSpatial:
    """Spatial fanout: multicast and spatial reduction semantics."""

    def test_multicast_amortizes_parent_reads(self, arch):
        # n spatial at Buffer: B partitioned, A multicast to 4 lanes.
        wl = _wl()
        m = _map(
            [],
            [Loop("m", 8), Loop("k", 8), Loop("n", 2)],
            [Loop("n", 4, spatial=True)],
        )
        t = analyze_dataflow(wl, arch, m)
        # A irrelevant to the spatial n loop: one read feeds 4 MACs.
        assert t.at("Buffer", "A").compute_feed_reads == 512 / 2 / 4
        # B relevant: every MAC gets distinct data.
        assert t.at("Buffer", "B").compute_feed_reads == 512

    def test_spatial_reduction_merges_updates(self, arch):
        # k spatial: partial sums from 4 lanes merge in a tree.
        wl = _wl()
        m = _map(
            [],
            [Loop("m", 8), Loop("k", 2), Loop("n", 8)],
            [Loop("k", 4, spatial=True)],
        )
        t = analyze_dataflow(wl, arch, m)
        z = t.at("Buffer", "Z")
        assert z.update_writes == 512 / 4

    def test_utilized_instances(self, arch):
        m = _map(
            [],
            [Loop("m", 8), Loop("k", 8), Loop("n", 2)],
            [Loop("n", 4, spatial=True)],
        )
        t = analyze_dataflow(_wl(), arch, m)
        assert t.utilized_compute_instances == 4


class TestBypass:
    """Tensors not kept at a level skip it entirely."""

    def test_streamed_tensor_reads_from_dram(self, arch):
        wl = _wl()
        m = Mapping(
            [
                LevelMapping("DRAM", []),
                LevelMapping(
                    "Buffer",
                    [Loop("m", 8), Loop("k", 8), Loop("n", 8)],
                    keep={"A", "Z"},
                ),
            ]
        )
        t = analyze_dataflow(wl, arch, m)
        assert ("Buffer", "B") not in t.traffic
        # B feeds compute straight from DRAM.
        assert t.at("DRAM", "B").compute_feed_reads == 512


class TestConvHalo:
    """Conv input tiles include the halo (P + R - 1)."""

    def test_input_tile_extents(self):
        arch = Architecture(
            "c",
            [StorageLevel("DRAM", None), StorageLevel("Buffer", 65536)],
            ComputeLevel("MAC"),
        )
        spec = conv2d(n=1, k=2, c=2, p=4, q=4, r=3, s=3)
        wl = Workload.uniform(spec, {})
        mapping = Mapping(
            [
                LevelMapping("DRAM", [Loop("p", 2)]),
                LevelMapping(
                    "Buffer",
                    [
                        Loop("k", 2),
                        Loop("c", 2),
                        Loop("p", 2),
                        Loop("q", 4),
                        Loop("r", 3),
                        Loop("s", 3),
                    ],
                ),
            ]
        )
        t = analyze_dataflow(wl, arch, mapping)
        i = t.at("Buffer", "I")
        # Buffer holds p-tile of 2 with r=3 -> H extent 4; W extent 6.
        assert i.tile_rank_extents == (1, 2, 4, 6)

    def test_conv_macs(self):
        arch = Architecture(
            "c",
            [StorageLevel("DRAM", None), StorageLevel("Buffer", 65536)],
            ComputeLevel("MAC"),
        )
        spec = conv2d(n=1, k=2, c=2, p=4, q=4, r=3, s=3)
        wl = Workload.uniform(spec, {})
        mapping = Mapping(
            [
                LevelMapping("DRAM", []),
                LevelMapping(
                    "Buffer",
                    [Loop(d, b) for d, b in spec.dims.items()],
                ),
            ]
        )
        t = analyze_dataflow(wl, arch, mapping)
        assert t.computes == 2 * 2 * 4 * 4 * 3 * 3


class TestLatchExtents:
    def test_fig10_mapping1_no_latch(self, arch):
        # Innermost k loop pairs A and B pointwise: no latch for B.
        m = _map([], [Loop("m", 8), Loop("n", 8), Loop("k", 8)])
        t = analyze_dataflow(_wl(), arch, m)
        assert t.latch_extents["B"] == {}

    def test_fig10_mapping2_latch_over_m(self, arch):
        # Innermost m loop: B stays latched across 8 m-iterations.
        m = _map([], [Loop("k", 8), Loop("n", 8), Loop("m", 8)])
        t = analyze_dataflow(_wl(), arch, m)
        assert t.latch_extents["B"] == {"m": 8}
