"""Tests for the cycle-level reference simulator."""

import numpy as np
import pytest

from repro import Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.errors import SpecError
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.refsim import CycleLevelSimulator
from repro.sparse.formats import (
    CoordinatePayload,
    FormatRank,
    FormatSpec,
)
from repro.sparse.saf import (
    SAFSpec,
    gate_compute,
    skip_compute,
    skip_storage,
)
from repro.tensor.generator import uniform_random_tensor


@pytest.fixture
def arch():
    return Architecture(
        "a",
        [StorageLevel("DRAM", None), StorageLevel("Buffer", 65536)],
        ComputeLevel("MAC", instances=1),
    )


def _data(spec, da=0.5, db=0.5, seed=0):
    return {
        "A": uniform_random_tensor(spec.tensor_shape("A"), da, seed=seed),
        "B": uniform_random_tensor(spec.tensor_shape("B"), db, seed=seed + 1),
        "Z": np.zeros(spec.tensor_shape("Z")),
    }


def _mapping(order=("m", "k", "n"), dram=()):
    spec = matmul(8, 8, 8)
    rem = {d: spec.dims[d] for d in spec.dims}
    dram_loops = []
    for dim, bound in dram:
        dram_loops.append(Loop(dim, bound))
        rem[dim] //= bound
    return Mapping(
        [
            LevelMapping("DRAM", dram_loops),
            LevelMapping("Buffer", [Loop(d, rem[d]) for d in order]),
        ]
    )


class TestFunctionalCorrectness:
    def test_computes_correct_output(self, arch):
        spec = matmul(8, 8, 8)
        data = _data(spec)
        sim = CycleLevelSimulator(spec, arch, _mapping(), data)
        sim.run()
        np.testing.assert_allclose(sim.output_data, data["A"] @ data["B"])

    def test_output_correct_with_skipping(self, arch):
        spec = matmul(8, 8, 8)
        data = _data(spec, da=0.25)
        safs = SAFSpec(compute_safs=[skip_compute(["A"])])
        sim = CycleLevelSimulator(spec, arch, _mapping(), data, safs)
        sim.run()
        np.testing.assert_allclose(sim.output_data, data["A"] @ data["B"])

    def test_output_correct_with_revisits(self, arch):
        spec = matmul(8, 8, 8)
        data = _data(spec)
        mapping = _mapping(order=("m", "k", "n"), dram=[("k", 2), ("m", 2)])
        sim = CycleLevelSimulator(spec, arch, mapping, data)
        sim.run()
        np.testing.assert_allclose(sim.output_data, data["A"] @ data["B"])


class TestCounting:
    def test_dense_compute_count(self, arch):
        spec = matmul(8, 8, 8)
        sim = CycleLevelSimulator(spec, arch, _mapping(), _data(spec))
        counts = sim.run()
        assert counts.computes.actual == 512
        assert counts.cycles == 512

    def test_skip_compute_counts_exact_nnz(self, arch):
        spec = matmul(8, 8, 8)
        data = _data(spec, da=0.25)
        nnz = int(np.count_nonzero(data["A"]))
        safs = SAFSpec(compute_safs=[skip_compute(["A"])])
        sim = CycleLevelSimulator(spec, arch, _mapping(), data, safs)
        counts = sim.run()
        assert counts.computes.actual == nnz * 8  # each nnz meets 8 n's
        assert counts.computes.skipped == 512 - nnz * 8
        assert counts.cycles < 512

    def test_gate_compute_keeps_cycles(self, arch):
        spec = matmul(8, 8, 8)
        data = _data(spec, da=0.25)
        safs = SAFSpec(compute_safs=[gate_compute()])
        sim = CycleLevelSimulator(spec, arch, _mapping(), data, safs)
        counts = sim.run()
        assert counts.cycles == 512
        assert counts.computes.gated > 0

    def test_fills_use_compressed_word_counts(self, arch):
        spec = matmul(8, 8, 8)
        data = _data(spec, da=0.25)
        cp2 = FormatSpec(
            [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
        )
        safs = SAFSpec(formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2})
        mapping = _mapping(dram=[("m", 2)])
        sim = CycleLevelSimulator(spec, arch, mapping, data, safs)
        counts = sim.run()
        assert counts.fills[("Buffer", "A")] == np.count_nonzero(data["A"])

    def test_storage_skip_eliminates_follower_fetches(self, arch):
        spec = matmul(8, 8, 8)
        data = _data(spec, da=0.25)
        safs = SAFSpec(storage_safs=[skip_storage("B", ["A"], "Buffer")])
        sim = CycleLevelSimulator(
            spec, arch, _mapping(order=("m", "n", "k")), data, safs
        )
        counts = sim.run()
        # With k innermost every (A, B) pairing is distinct (no latch
        # reuse), so B is fetched once per effectual pair per n.
        expected = np.count_nonzero(data["A"]) * 8
        assert counts.reads[("Buffer", "B")].actual == expected

    def test_compute_only_skip_still_fetches_other_operand(self, arch):
        # STC-style: skipping compute on A does NOT save B's fetches.
        spec = matmul(8, 8, 8)
        data = _data(spec, da=0.25)
        safs = SAFSpec(compute_safs=[skip_compute(["A"])])
        sim = CycleLevelSimulator(
            spec, arch, _mapping(order=("m", "n", "k")), data, safs
        )
        counts = sim.run()
        assert counts.reads[("Buffer", "B")].actual == 512

    def test_spatial_fanout_divides_cycles(self):
        arch4 = Architecture(
            "a4",
            [StorageLevel("DRAM", None), StorageLevel("Buffer", 65536)],
            ComputeLevel("MAC", instances=4),
        )
        spec = matmul(8, 8, 8)
        mapping = Mapping(
            [
                LevelMapping("DRAM", []),
                LevelMapping(
                    "Buffer",
                    [Loop("m", 8), Loop("k", 8), Loop("n", 2)],
                    [Loop("n", 4)],
                ),
            ]
        )
        sim = CycleLevelSimulator(spec, arch4, mapping, _data(spec))
        counts = sim.run()
        assert counts.cycles == 512 / 4


class TestValidation:
    def test_rejects_missing_data(self, arch):
        spec = matmul(8, 8, 8)
        with pytest.raises(SpecError):
            CycleLevelSimulator(spec, arch, _mapping(), {"A": np.zeros((8, 8))})

    def test_rejects_wrong_shape(self, arch):
        spec = matmul(8, 8, 8)
        data = _data(spec)
        data["A"] = np.zeros((4, 4))
        with pytest.raises(SpecError):
            CycleLevelSimulator(spec, arch, _mapping(), data)
