"""Tests for the mini-Accelergy energy backend."""

import math

import pytest

from repro.accelergy.backend import Accelergy
from repro.accelergy.library import (
    COMPONENT_LIBRARY,
    DramModel,
    MacModel,
    SramModel,
    build_component,
)
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.errors import SpecError


class TestLibrary:
    def test_all_components_instantiable(self):
        for name in COMPONENT_LIBRARY:
            build_component(name, {})

    def test_unknown_component(self):
        with pytest.raises(SpecError):
            build_component("tpu")

    def test_energy_hierarchy(self):
        """DRAM >> SRAM > regfile > latch (the Eyeriss hierarchy)."""
        dram = build_component("dram").energy_per_action("read")
        sram = build_component(
            "sram", {"capacity_words": 64 * 1024}
        ).energy_per_action("read")
        rf = build_component("regfile").energy_per_action("read")
        latch = build_component("latch").energy_per_action("read")
        assert dram > 10 * sram > 10 * rf > rf / 10 > latch / 10

    def test_sram_scales_with_capacity(self):
        small = SramModel({"capacity_words": 1024}).energy_per_action("read")
        big = SramModel({"capacity_words": 64 * 1024}).energy_per_action("read")
        assert big > small
        assert math.isclose(big / small, math.sqrt(64), rel_tol=1e-9)

    def test_width_scaling(self):
        narrow = DramModel({"word_bits": 8}).energy_per_action("read")
        wide = DramModel({"word_bits": 16}).energy_per_action("read")
        assert math.isclose(wide, 2 * narrow)

    def test_metadata_cheaper_than_data(self):
        model = SramModel(
            {"capacity_words": 4096, "word_bits": 16, "metadata_word_bits": 4}
        )
        assert model.energy_per_action("metadata_read") < model.energy_per_action(
            "read"
        )

    def test_mac_width_quadratic(self):
        mac8 = MacModel({"word_bits": 8}).energy_per_action("op")
        mac16 = MacModel({"word_bits": 16}).energy_per_action("op")
        assert math.isclose(mac16 / mac8, 4.0)

    def test_gated_fraction_default_and_override(self):
        assert build_component("sram").gated_fraction == 0.10
        custom = build_component("sram", {"gated_fraction": 0.0})
        assert custom.gated_fraction == 0.0

    def test_invalid_action(self):
        with pytest.raises(SpecError):
            build_component("mac").energy_per_action("read")


class TestBackend:
    @pytest.fixture
    def arch(self):
        return Architecture(
            "a",
            [
                StorageLevel("DRAM", None, component="dram"),
                StorageLevel("Buffer", 4096, component="sram"),
            ],
            ComputeLevel("MAC", instances=4),
        )

    def test_storage_energies_positive(self, arch):
        backend = Accelergy(arch)
        spec = backend.storage("Buffer")
        assert spec.read > 0 and spec.write >= spec.read

    def test_action_energy_kinds(self, arch):
        spec = Accelergy(arch).storage("Buffer")
        actual = spec.action_energy("read", "actual")
        gated = spec.action_energy("read", "gated")
        skipped = spec.action_energy("read", "skipped")
        assert actual > gated > skipped == 0.0
        assert math.isclose(gated, actual * spec.gated_fraction)

    def test_compute_energy(self, arch):
        compute = Accelergy(arch).compute
        assert compute.action_energy("actual") == compute.op
        assert compute.action_energy("skipped") == 0.0

    def test_unknown_kind_rejected(self, arch):
        with pytest.raises(ValueError):
            Accelergy(arch).storage("Buffer").action_energy("read", "magic")
