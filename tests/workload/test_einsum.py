"""Unit tests for the extended-Einsum workload algebra."""

import pytest

from repro.common.errors import SpecError
from repro.workload.einsum import (
    EinsumSpec,
    ProjectionTerm,
    RankProjection,
    TensorRef,
    conv2d,
    depthwise_conv2d,
    matmul,
)


class TestMatmul:
    def test_dims(self):
        spec = matmul(4, 8, 16)
        assert spec.dims == {"m": 4, "k": 8, "n": 16}

    def test_total_operations(self):
        assert matmul(4, 8, 16).total_operations == 512

    def test_tensor_shapes(self):
        spec = matmul(4, 8, 16)
        assert spec.tensor_shape("A") == (4, 8)
        assert spec.tensor_shape("B") == (8, 16)
        assert spec.tensor_shape("Z") == (4, 16)

    def test_tensor_sizes(self):
        spec = matmul(4, 8, 16)
        assert spec.tensor_size("A") == 32
        assert spec.tensor_size("Z") == 64

    def test_output_identity(self):
        spec = matmul(2, 2, 2)
        assert spec.output.name == "Z"
        assert [t.name for t in spec.inputs] == ["A", "B"]

    def test_reduction_dims(self):
        assert matmul(2, 2, 2).reduction_dims == {"k"}

    def test_unknown_tensor(self):
        with pytest.raises(SpecError):
            matmul(2, 2, 2).tensor("Q")


class TestConv2d:
    def test_input_halo(self):
        spec = conv2d(n=1, k=4, c=3, p=8, q=8, r=3, s=3)
        # Input spatial extents are P + R - 1 by Q + S - 1.
        assert spec.tensor_shape("I") == (1, 3, 10, 10)

    def test_strided_input_extent(self):
        spec = conv2d(n=1, k=1, c=1, p=4, q=4, r=3, s=3, stride=2)
        # stride*(P-1) + R = 2*3 + 3 = 9.
        assert spec.tensor_shape("I") == (1, 1, 9, 9)

    def test_weight_shape(self):
        spec = conv2d(n=1, k=4, c=3, p=8, q=8, r=3, s=3)
        assert spec.tensor_shape("W") == (4, 3, 3, 3)

    def test_macs(self):
        spec = conv2d(n=1, k=2, c=3, p=4, q=4, r=3, s=3)
        assert spec.total_operations == 2 * 3 * 4 * 4 * 3 * 3

    def test_reduction_dims(self):
        spec = conv2d(n=1, k=2, c=3, p=4, q=4, r=3, s=3)
        assert spec.reduction_dims == {"c", "r", "s"}


class TestDepthwise:
    def test_no_k_dim(self):
        spec = depthwise_conv2d(n=1, c=8, p=4, q=4, r=3, s=3)
        assert "k" not in spec.dims
        assert spec.reduction_dims == {"r", "s"}

    def test_output_keeps_channels(self):
        spec = depthwise_conv2d(n=1, c=8, p=4, q=4, r=3, s=3)
        assert spec.tensor_shape("O") == (1, 8, 4, 4)


class TestRankProjection:
    def test_simple_extent(self):
        r = RankProjection("M", (ProjectionTerm("m"),))
        assert r.extent({"m": 7}) == 7

    def test_affine_extent(self):
        r = RankProjection(
            "H", (ProjectionTerm("p", 2), ProjectionTerm("r"))
        )
        assert r.extent({"p": 4, "r": 3}) == 2 * 3 + 2 + 1

    def test_negative_coefficient_rejected(self):
        with pytest.raises(SpecError):
            ProjectionTerm("p", 0)


class TestSpecValidation:
    def _tensor(self, name, dims, output=False):
        ranks = tuple(
            RankProjection(d.upper(), (ProjectionTerm(d),)) for d in dims
        )
        return TensorRef(name, ranks, is_output=output)

    def test_needs_exactly_one_output(self):
        with pytest.raises(SpecError):
            EinsumSpec(
                "bad", {"m": 2}, [self._tensor("A", ["m"])]
            )

    def test_rejects_duplicate_names(self):
        with pytest.raises(SpecError):
            EinsumSpec(
                "bad",
                {"m": 2},
                [
                    self._tensor("A", ["m"]),
                    self._tensor("A", ["m"], output=True),
                ],
            )

    def test_rejects_unknown_projection_dim(self):
        with pytest.raises(SpecError):
            EinsumSpec(
                "bad",
                {"m": 2},
                [
                    self._tensor("A", ["x"]),
                    self._tensor("Z", ["m"], output=True),
                ],
            )

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(SpecError):
            matmul(0, 2, 2)
