"""Unit tests for Workload (einsum + densities)."""

import pytest

from repro.common.errors import SpecError
from repro.sparse.density import BandedDensity, UniformDensity
from repro.workload.einsum import matmul
from repro.workload.spec import Workload


class TestWorkload:
    def test_uniform_builder_binds_tensor_size(self):
        wl = Workload.uniform(matmul(4, 4, 4), {"A": 0.5})
        model = wl.density_of("A")
        assert isinstance(model, UniformDensity)
        assert model.tensor_size == 16
        assert model.density == 0.5

    def test_unlisted_tensor_is_dense(self):
        wl = Workload.uniform(matmul(4, 4, 4), {"A": 0.5})
        assert wl.density_of("B").density == 1.0

    def test_rejects_unknown_tensor(self):
        with pytest.raises(SpecError):
            Workload.uniform(matmul(2, 2, 2), {"Q": 0.5})

    def test_custom_density_model(self):
        banded = BandedDensity(8, 8, band_width=1)
        wl = Workload(matmul(8, 8, 8), {"A": banded})
        assert wl.density_of("A") is banded

    def test_effectual_operations(self):
        wl = Workload.uniform(matmul(4, 4, 4), {"A": 0.5, "B": 0.5})
        assert wl.effectual_operations == 64 * 0.25

    def test_name_defaults_to_einsum(self):
        wl = Workload.uniform(matmul(2, 2, 2, name="mm"), {})
        assert wl.name == "mm"

    def test_describe_mentions_tensors(self):
        wl = Workload.uniform(matmul(2, 2, 2), {"A": 0.25})
        text = wl.describe()
        assert "A" in text and "0.25" in text
