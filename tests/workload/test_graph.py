"""EinsumGraph construction, validation, and serialization."""

import pytest

from repro.common.errors import SpecError
from repro.workload.einsum import (
    EinsumSpec,
    ProjectionTerm,
    RankProjection,
    TensorRef,
    einsum_to_dict,
    matmul,
)
from repro.workload.graph import EinsumGraph
from repro.workload.nets import attention


def _rank(name, dim):
    return RankProjection(name, (ProjectionTerm(dim),))


def _matmul_like(name, out_name, in_a, in_b, m, k, n):
    """m x k @ k x n -> m x n with explicit tensor names."""
    a = TensorRef(in_a, (_rank("M", "m"), _rank("K", "k")))
    b = TensorRef(in_b, (_rank("K", "k"), _rank("N", "n")))
    z = TensorRef(out_name, (_rank("M", "m"), _rank("N", "n")), is_output=True)
    return EinsumSpec(name, {"m": m, "k": k, "n": n}, [a, b, z])


def chain_graph(m=8, k=4, n1=16, n2=6):
    """fc1 produces H; fc2 consumes it: A[m,k] @ B[k,n1] -> H; H @ C -> O."""
    fc1 = _matmul_like("fc1", "H", "A", "B", m, k, n1)
    fc2 = _matmul_like("fc2", "O", "H", "C", m, n1, n2)
    return EinsumGraph("chain", [fc1, fc2])


class TestConstruction:
    def test_basic_properties(self):
        graph = chain_graph()
        assert [spec.name for spec in graph.einsums] == ["fc1", "fc2"]
        assert graph.intermediates == ["H"]
        assert graph.producer_of("H") == "fc1"
        assert graph.consumers_of("H") == ["fc2"]
        assert set(graph.graph_inputs) == {"A", "B", "C"}
        assert graph.graph_outputs == ["O"]
        assert graph.einsum("fc2").name == "fc2"
        assert graph.total_operations == sum(
            spec.total_operations for spec in graph.einsums
        )

    def test_tensor_names_first_appearance_order(self):
        names = chain_graph().tensor_names()
        assert names == ["A", "B", "H", "C", "O"]

    def test_single_einsum_graph_has_no_intermediates(self):
        graph = EinsumGraph("solo", [matmul(4, 4, 4, name="mm")])
        assert graph.intermediates == []
        assert set(graph.graph_inputs) == {"A", "B"}

    def test_cache_key_is_content_based(self):
        assert chain_graph().cache_key() == chain_graph().cache_key()
        assert chain_graph().cache_key() != chain_graph(m=16).cache_key()


class TestValidation:
    def test_duplicate_einsum_names_rejected(self):
        with pytest.raises(SpecError, match="duplicate"):
            EinsumGraph(
                "dup",
                [matmul(4, 4, 4, name="mm"), matmul(8, 8, 8, name="mm")],
            )

    def test_two_producers_rejected(self):
        e1 = _matmul_like("e1", "Z", "A", "B", 4, 4, 4)
        e2 = _matmul_like("e2", "Z", "C", "D", 4, 4, 4)
        with pytest.raises(SpecError, match="produced by both"):
            EinsumGraph("bad", [e1, e2])

    def test_consumer_before_producer_rejected(self):
        fc1 = _matmul_like("fc1", "H", "A", "B", 8, 4, 16)
        fc2 = _matmul_like("fc2", "O", "H", "C", 8, 16, 6)
        with pytest.raises(SpecError, match="order"):
            EinsumGraph("reversed", [fc2, fc1])

    def test_shared_tensor_shape_mismatch_rejected(self):
        fc1 = _matmul_like("fc1", "H", "A", "B", 8, 4, 16)
        # Consumes H with the wrong contraction extent.
        fc2 = _matmul_like("fc2", "O", "H", "C", 8, 12, 6)
        with pytest.raises(SpecError, match="shape"):
            EinsumGraph("mismatch", [fc1, fc2])

    def test_empty_graph_rejected(self):
        with pytest.raises(SpecError):
            EinsumGraph("empty", [])


class TestSerialization:
    def test_round_trip_is_bit_exact(self):
        graph = chain_graph()
        data = graph.to_dict()
        rebuilt = EinsumGraph.from_dict(data)
        assert rebuilt.to_dict() == data
        assert rebuilt.cache_key() == graph.cache_key()

    def test_malformed_einsum_raises_spec_error_at_load(self):
        data = chain_graph().to_dict()
        # Duplicate tensor names inside one einsum must surface as a
        # SpecError when the graph is rebuilt, not later at evaluation.
        data["einsums"][0]["tensors"][1]["name"] = "A"
        with pytest.raises(SpecError):
            EinsumGraph.from_dict(data)

    def test_unknown_projection_dim_raises_spec_error_at_load(self):
        data = chain_graph().to_dict()
        data["einsums"][0]["tensors"][0]["ranks"][0]["terms"][0]["dim"] = "zz"
        with pytest.raises(SpecError):
            EinsumGraph.from_dict(data)

    def test_wrong_schema_version_rejected(self):
        data = chain_graph().to_dict()
        data["schema"] = 99
        with pytest.raises(SpecError):
            EinsumGraph.from_dict(data)

    def test_einsum_to_dict_round_trip(self):
        spec = chain_graph().einsums[0]
        from repro.workload.einsum import einsum_from_dict

        rebuilt = einsum_from_dict(einsum_to_dict(spec))
        assert rebuilt.cache_key() == spec.cache_key()


class TestAttention:
    def test_attention_graph_shape(self):
        graph = attention(seq=32, d_model=64, heads=4)
        assert [spec.name for spec in graph.einsums] == ["qk", "av"]
        assert graph.intermediates == ["S"]
        assert graph.producer_of("S") == "qk"
        assert graph.consumers_of("S") == ["av"]
        # S is heads x seq x seq.
        qk = graph.einsum("qk")
        assert qk.tensor_shape("S") == (4, 32, 32)

    def test_attention_head_divisibility_checked(self):
        with pytest.raises(SpecError, match="divisible"):
            attention(seq=8, d_model=10, heads=4)
