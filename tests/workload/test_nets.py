"""Unit tests for the DNN layer tables."""

import pytest

from repro.workload.nets import (
    NetLayer,
    alexnet,
    bert_base,
    mobilenet_v1,
    network,
    resnet50,
    vgg16,
)


class TestAlexNet:
    def test_layer_count(self):
        assert len(alexnet()) == 8  # 5 conv + 3 fc

    def test_conv1_shape(self):
        conv1 = alexnet()[0].spec
        assert conv1.dims["k"] == 96
        assert conv1.dims["c"] == 3
        assert conv1.dims["r"] == 11

    def test_conv2_grouped_channels(self):
        conv2 = alexnet()[1].spec
        assert conv2.dims["c"] == 48  # per-group channels

    def test_total_macs_magnitude(self):
        # AlexNet conv layers are ~666M MACs (for the grouped model).
        conv_macs = sum(l.total_operations for l in alexnet()[:5])
        assert 5e8 < conv_macs < 9e8


class TestVGG16:
    def test_layer_count(self):
        assert len(vgg16()) == 16

    def test_total_macs_magnitude(self):
        # VGG16 is ~15.5G MACs.
        macs = sum(l.total_operations for l in vgg16())
        assert 1.4e10 < macs < 1.7e10


class TestResNet50:
    def test_total_macs_magnitude(self):
        # ResNet50 is ~3.8-4.1G MACs.
        macs = sum(l.total_operations for l in resnet50())
        assert 3.3e9 < macs < 4.5e9

    def test_repeats_present(self):
        assert any(l.repeat > 1 for l in resnet50())


class TestMobileNet:
    def test_has_depthwise_layers(self):
        layers = mobilenet_v1()
        dw = [l for l in layers if l.name.startswith("dw")]
        assert len(dw) == 13
        for layer in dw:
            assert "k" not in layer.spec.dims

    def test_total_macs_magnitude(self):
        # MobileNetV1 is ~569M MACs.
        macs = sum(l.total_operations for l in mobilenet_v1())
        assert 4.5e8 < macs < 7e8


class TestBert:
    def test_all_matmuls(self):
        for layer in bert_base():
            assert set(layer.spec.dims) == {"m", "k", "n"}

    def test_total_macs_magnitude(self):
        # BERT-base at seq 512 is ~49G MACs (2 ops per MAC in FLOPs).
        macs = sum(l.total_operations for l in bert_base())
        assert 3e10 < macs < 7e10


class TestRegistry:
    def test_lookup(self):
        assert network("alexnet")[0].name == "conv1"

    def test_unknown(self):
        with pytest.raises(KeyError):
            network("lenet")

    def test_layer_total_ops_scales_with_repeat(self):
        layer = NetLayer("x", alexnet()[0].spec, repeat=3)
        assert layer.total_operations == 3 * alexnet()[0].total_operations
