"""Shared fixtures: a small two-level architecture and workloads."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_persistent_store(tmp_path_factory):
    """Point the persistent cache tier at a throwaway directory so the
    suite neither reads from nor pollutes the user's real store."""
    import os

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("persistent-store")
    )
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous

from repro import (
    Architecture,
    ComputeLevel,
    StorageLevel,
    Workload,
    matmul,
)
from repro.mapping.mapping import LevelMapping, Loop, Mapping


@pytest.fixture
def toy_arch() -> Architecture:
    """DRAM -> Buffer -> 1 MAC, no bandwidth limits."""
    return Architecture(
        "toy",
        [
            StorageLevel("DRAM", capacity_words=None, component="dram"),
            StorageLevel("Buffer", capacity_words=65536, component="sram"),
        ],
        ComputeLevel("MAC", instances=1),
    )


@pytest.fixture
def spatial_arch() -> Architecture:
    """DRAM -> Buffer(x1) -> 4 MACs for spatial tests."""
    return Architecture(
        "toy-spatial",
        [
            StorageLevel("DRAM", capacity_words=None, component="dram"),
            StorageLevel("Buffer", capacity_words=65536, component="sram"),
        ],
        ComputeLevel("MAC", instances=4),
    )


@pytest.fixture
def mm888() -> Workload:
    return Workload.uniform(matmul(8, 8, 8), {"A": 0.5, "B": 0.5})


@pytest.fixture
def flat_mapping(mm888, toy_arch) -> Mapping:
    """All loops temporal at the Buffer."""
    return Mapping(
        [
            LevelMapping("DRAM", []),
            LevelMapping(
                "Buffer", [Loop("m", 8), Loop("k", 8), Loop("n", 8)]
            ),
        ]
    )
