"""Fig. 15: next-generation sparse tensor core case study (Sec 7.1).

Normalized cycles and energy-delay product for DSTC, STC and the three
STC extensions running ResNet50 layers pruned to 2:4 / 2:6 / 2:8
structured sparsity (plus unpruned), with ~65%-dense input activations.

Headline shapes to reproduce:
* STC achieves exactly 2x at 2:4 and nothing beyond (Sec 6.3.5),
* DSTC always has the fewest cycles but costs more energy on denser
  workloads,
* STC-flexible adds energy savings at 2:6/2:8 but little speedup
  (SMEM bandwidth wall),
* STC-flexible-rle-dualCompress restores speed via pure bandwidth
  reduction and beats DSTC on energy (the derived design of Sec 7.1.4).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _support import print_table

from repro import Session, Workload
from repro.designs import dstc, stc
from repro.designs.common import conv_as_gemm
from repro.sparse.density import FixedStructuredDensity, UniformDensity
from repro.workload.nets import resnet50

INPUT_DENSITY = 0.65
WEIGHT_REGIMES = {
    "dense": None,
    "2:4": (2, 4),
    "2:6": (2, 6),
    "2:8": (2, 8),
}


def _designs():
    return [
        dstc.dense_tensor_core_design(),
        dstc.dstc_design(),
        stc.stc_design(),
        stc.stc_flexible_design(8),
        stc.stc_flexible_rle_design(),
        stc.stc_flexible_rle_dualcompress_design(),
    ]


def _weight_model(design_name, regime, size):
    if regime is None:
        return UniformDensity(1.0, size)
    m, n = regime
    if design_name == "stc" and m / n < 0.5:
        # Commercial STC exploits at most 2:4.
        return FixedStructuredDensity(2, 4)
    return FixedStructuredDensity(m, n)


def run_fig15():
    ev = Session()
    layer = resnet50()[10]  # representative res3 3x3 layer
    gemm = conv_as_gemm(layer)
    table = {}
    base_cycles = base_edp = None
    rows = []
    for regime_name, regime in WEIGHT_REGIMES.items():
        for design in _designs():
            weight = _weight_model(
                design.name, regime, gemm.tensor_size("A")
            )
            wl = Workload(
                gemm,
                {
                    "A": weight,
                    "B": UniformDensity(
                        INPUT_DENSITY, gemm.tensor_size("B")
                    ),
                },
                name=f"{layer.name}@{regime_name}",
            )
            result = ev.evaluate(design, wl)
            if base_cycles is None:
                base_cycles, base_edp = result.cycles, result.edp
            table[(regime_name, design.name)] = result
            rows.append(
                [
                    regime_name,
                    design.name,
                    result.cycles / base_cycles,
                    result.edp / base_edp,
                    result.latency.bottleneck,
                ]
            )
    return rows, table, base_cycles


def test_fig15_stc_case_study(benchmark):
    rows, table, base_cycles = benchmark.pedantic(
        run_fig15, rounds=1, iterations=1
    )
    print_table(
        "Fig. 15: normalized cycles / EDP (vs dense tensor core)",
        ["weights", "design", "norm cycles", "norm EDP", "bottleneck"],
        rows,
    )
    benchmark.extra_info["rows"] = rows

    def cycles(regime, design):
        return table[(regime, design)].cycles

    def energy(regime, design):
        return table[(regime, design)].energy_pj

    # STC: exact 2x at 2:4, and pinned at 2x even for sparser weights.
    assert base_cycles / cycles("2:4", "stc") == 2.0
    assert base_cycles / cycles("2:8", "stc") == 2.0
    # STC-flexible: barely more speedup at 2:8 (bandwidth-bound) ...
    flexible_speedup = base_cycles / cycles("2:8", "stc-flexible")
    assert flexible_speedup < 3.0
    assert table[("2:8", "stc-flexible")].latency.bottleneck == "SMEM"
    # ... but extra energy savings relative to STC.
    assert energy("2:8", "stc-flexible") < energy("2:8", "stc")
    # Dual compression restores most of the speedup.
    dual_speedup = base_cycles / cycles(
        "2:8", "stc-flexible-rle-dualCompress"
    )
    assert dual_speedup > flexible_speedup
    # DSTC always introduces the fewest cycles ...
    for regime in WEIGHT_REGIMES:
        assert cycles(regime, "dstc") <= min(
            cycles(regime, d.name) for d in _designs()[2:]
        )
    # ... but loses on energy for denser workloads.
    assert energy("dense", "dstc") > energy("dense", "stc")
    # The derived design always beats DSTC on energy (Sec 7.1.4).
    for regime in WEIGHT_REGIMES:
        assert energy(regime, "stc-flexible-rle-dualCompress") < energy(
            regime, "dstc"
        )