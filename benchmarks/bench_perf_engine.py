"""Perf smoke for the fast-path evaluation engine.

Measures three throughput numbers that the fast path is responsible
for — fixed-mapping evaluations/sec under a SAF x density sweep (the
Fig. 17 co-design traffic pattern), mapspace-search candidates/sec
(the DSE traffic pattern), and sparse-postprocess evaluations/sec
(the vectorized + cache-served sparse modeling stage, compared against
the scalar no-cache oracle that matches the pre-vectorization
pipeline) — plus the dense-analysis cache hit rate. The numbers are
written to ``BENCH_perf_engine.json`` next to this file and checked
against the committed ``baseline_perf_engine.json``: the test fails if
a throughput regresses more than 30% below the baseline, or if the
sparse-postprocess stage falls below 3x its scalar oracle.

The committed baseline is deliberately conservative (roughly half of
the throughput measured on the reference machine) so that CI noise does
not trip it while order-of-magnitude regressions — e.g. reintroducing
scalar scipy pmf calls in the hot loop — still fail loudly.

Run:  pytest benchmarks/bench_perf_engine.py -q -s
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import pytest

from repro import Design, Evaluator, SAFSpec, Workload, conv2d, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.cache import PersistentCache
from repro.designs import codesign
from repro.mapping.mapspace import MapspaceConstraints
from repro.model.engine import persistent_state_key
from repro.sparse.formats import CoordinatePayload, FormatRank, FormatSpec
from repro.sparse.saf import SAFKind, double_sided, gate_compute, skip_compute

BASELINE_PATH = Path(__file__).parent / "baseline_perf_engine.json"
SUMMARY_PATH = Path(__file__).parent / "BENCH_perf_engine.json"
WARM_SUMMARY_PATH = Path(__file__).parent / "BENCH_warm_start.json"
BATCHED_SUMMARY_PATH = Path(__file__).parent / "BENCH_search_batched.json"
COLD_SUMMARY_PATH = Path(__file__).parent / "BENCH_search_cold.json"

#: Fail when throughput drops below this fraction of the baseline.
REGRESSION_FLOOR = 0.7

SWEEP_DENSITIES = [1e-4, 1e-3, 1e-2, 0.06, 0.3]
SWEEP_ROUNDS = 3
SEARCH_BUDGET = 40
#: Times each (mapping, SAF, density) point is revisited — a (very
#: conservative) stand-in for evolution-strategy mappers and TeAAL-like
#: front-ends that re-evaluate the same einsums under many schedules.
SPARSE_ROUNDS = 6
#: The sparse-postprocess stage must beat its scalar no-cache oracle
#: (the pre-vectorization pipeline) by at least this factor.
SPARSE_SPEEDUP_FLOOR = 3.0


def _codesign_sweep(evaluator: Evaluator) -> int:
    """One Fig.17-style SAF x density sweep; returns evaluation count."""
    count = 0
    for density in SWEEP_DENSITIES:
        workload = Workload.uniform(
            matmul(1024, 1024, 1024), {"A": density, "B": density}
        )
        for dataflow, saf in codesign.ALL_COMBINATIONS:
            design = codesign.build_design(dataflow, saf)
            evaluator._evaluate(design, workload)
            count += 1
    return count


def _dse_designs() -> tuple[list[Design], Workload]:
    """The DSE searches' design points: three SAF variants of one
    small accelerator, plus the shared workload."""
    arch = Architecture(
        "perf-dse",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Buffer", 16 * 1024, component="sram",
                         read_bandwidth=8, write_bandwidth=8),
        ],
        ComputeLevel("MAC", instances=16),
    )
    workload = Workload.uniform(matmul(128, 128, 128), {"A": 0.2, "B": 0.2})
    cp2 = FormatSpec(
        [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
    )
    saf_choices = [
        SAFSpec(),
        SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            compute_safs=[gate_compute()],
        ),
        SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            storage_safs=double_sided(SAFKind.SKIP, "A", "B", "Buffer"),
            compute_safs=[skip_compute()],
        ),
    ]
    constraints = MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]})
    designs = [
        Design(f"dse-{index}", arch, safs, constraints=constraints)
        for index, safs in enumerate(saf_choices)
    ]
    return designs, workload


def _dse_search(evaluator: Evaluator) -> int:
    """One DSE-style mapspace search over three SAF variants; returns
    the nominal candidate count."""
    designs, workload = _dse_designs()
    candidates = 0
    for design in designs:
        result = evaluator._search_mappings(design, workload)
        assert result is not None
        candidates += SEARCH_BUDGET
    return candidates


def _sparse_stage_pairs():
    """(dense, safs) pairs of the codesign sweep, dense analyses shared
    the way the engine shares them (one per dataflow x density)."""
    evaluator = Evaluator()
    pairs = []
    for density in SWEEP_DENSITIES:
        workload = Workload.uniform(
            matmul(1024, 1024, 1024), {"A": density, "B": density}
        )
        for dataflow, saf in codesign.ALL_COMBINATIONS:
            design = codesign.build_design(dataflow, saf)
            mapping = design.mapping_for(workload)
            dense = evaluator._dense_analysis(design, workload, mapping)
            pairs.append((dense, design.safs))
    return pairs


def _bench_sparse_postprocess() -> dict:
    """Sparse-postprocess throughput: cached+vectorized vs the scalar
    no-cache oracle (the pre-vectorization pipeline).

    Both paths are timed with the process-global memos (tile-format
    stage, density kernels) and numpy already warm — the pre-PR
    pipeline had those too — so the ratio isolates what this PR adds:
    the batched arithmetic and the sparse-analysis cache stage.
    """
    from repro.sparse.postprocess import analyze_sparse

    pairs = _sparse_stage_pairs()
    for vectorized in (False, True):  # shared warmup for both paths
        for dense, safs in pairs:
            analyze_sparse(dense, safs, vectorized=vectorized)

    t0 = time.perf_counter()
    oracle = None
    for _ in range(SPARSE_ROUNDS):
        for dense, safs in pairs:
            oracle = analyze_sparse(dense, safs, vectorized=False)
    scalar_seconds = time.perf_counter() - t0

    evaluator = Evaluator()
    t0 = time.perf_counter()
    fast = None
    for _ in range(SPARSE_ROUNDS):
        for dense, safs in pairs:
            fast = evaluator._sparse_analysis(dense, safs)
    fast_seconds = time.perf_counter() - t0

    # The fast path must agree bit-for-bit with the oracle (spot check
    # on the last pair; the test suite covers every bundled design).
    assert fast.compute.actual == oracle.compute.actual
    assert fast.compute.gated == oracle.compute.gated
    for key, actions in oracle.actions.items():
        other = fast.actions[key]
        assert other.data_reads.actual == actions.data_reads.actual
        assert other.data_writes.actual == actions.data_writes.actual

    evals = SPARSE_ROUNDS * len(pairs)
    per_sec = evals / fast_seconds
    scalar_per_sec = evals / scalar_seconds
    return {
        "sparse_evals_per_sec": round(per_sec, 1),
        "sparse_scalar_evals_per_sec": round(scalar_per_sec, 1),
        "sparse_speedup_vs_scalar": round(per_sec / scalar_per_sec, 2),
        "sparse_evaluations": evals,
        "sparse_seconds": round(fast_seconds, 4),
        "sparse_cache_hit_rate": round(
            evaluator.sparse_cache.hit_rate, 4
        ),
    }


@pytest.mark.perf
def test_perf_engine_smoke():
    # --- fixed-mapping evaluation throughput (SAF x density sweep) ---
    evaluator = Evaluator()
    _codesign_sweep(evaluator)  # warm caches (kernel + dense-analysis)
    t0 = time.perf_counter()
    evals = sum(_codesign_sweep(evaluator) for _ in range(SWEEP_ROUNDS))
    sweep_seconds = time.perf_counter() - t0
    evals_per_sec = evals / sweep_seconds
    cache_stats = evaluator.dense_cache.stats()

    # --- mapspace-search throughput (DSE pattern) ---
    search_evaluator = Evaluator(search_budget=SEARCH_BUDGET)
    t0 = time.perf_counter()
    candidates = _dse_search(search_evaluator)
    search_seconds = time.perf_counter() - t0
    search_candidates_per_sec = candidates / search_seconds

    # --- sparse-postprocess throughput (vectorized + cache stage) ---
    sparse_summary = _bench_sparse_postprocess()

    summary = {
        "bench": "perf_engine",
        "evals_per_sec": round(evals_per_sec, 1),
        "sweep_evaluations": evals,
        "sweep_seconds": round(sweep_seconds, 4),
        "dense_cache_hit_rate": round(cache_stats["hit_rate"], 4),
        "dense_cache_hits": cache_stats["hits"],
        "dense_cache_misses": cache_stats["misses"],
        "search_candidates_per_sec": round(search_candidates_per_sec, 1),
        "search_candidates": candidates,
        "search_seconds": round(search_seconds, 4),
        **sparse_summary,
    }
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\n=== perf_engine ===\n{json.dumps(summary, indent=2)}")

    # The codesign sweep re-evaluates the same (einsum, arch, mapping)
    # per density/SAF variant; a healthy dense cache serves most of it.
    assert cache_stats["hit_rate"] > 0.5, cache_stats

    baseline = json.loads(BASELINE_PATH.read_text())
    for metric in (
        "evals_per_sec",
        "search_candidates_per_sec",
        "sparse_evals_per_sec",
    ):
        floor = baseline[metric] * REGRESSION_FLOOR
        assert summary[metric] >= floor, (
            f"{metric} regressed: {summary[metric]:.1f}/s is below "
            f"{REGRESSION_FLOOR:.0%} of the committed baseline "
            f"{baseline[metric]:.1f}/s"
        )

    # Acceptance: the vectorized + cache-served sparse stage must beat
    # the scalar no-cache oracle (the pre-vectorization pipeline) 3x.
    assert summary["sparse_speedup_vs_scalar"] >= SPARSE_SPEEDUP_FLOOR, (
        f"sparse-postprocess speedup {summary['sparse_speedup_vs_scalar']}x "
        f"is below the {SPARSE_SPEEDUP_FLOOR}x floor"
    )


#: Warm repeats of the DSE search in the batched-search bench (on top
#: of each path's own cold round) — the repeated-search traffic pattern
#: (SAF sweeps, co-design loops, CI re-runs) the batched strategy and
#: the candidates memo are built for.
BATCHED_SEARCH_ROUNDS = 4


@pytest.mark.perf
def test_search_batched_smoke():
    """Cross-candidate batched search vs the serial per-candidate oracle.

    Both strategies run the same DSE traffic — one cold round plus
    ``BATCHED_SEARCH_ROUNDS`` warm repeats over the three SAF variants,
    each with its own fresh evaluator — after a shared warmup of the
    process-global memos (tile-format stage, density kernels, divisor
    tables), so the ratio isolates exactly what the batched strategy
    adds: block-stacked sparse evaluation on the cold round and
    memoised candidate-stream replay (the ``"candidates"`` stage) on
    every warm one. The winners must agree bit for bit — the batched
    path is the default precisely because it is provably identical —
    and the speedup must clear the committed
    ``search_batched_speedup_floor``.
    """
    designs, workload = _dse_designs()
    warmup = Evaluator(search_budget=SEARCH_BUDGET)
    for design in designs:
        warmup._search_mappings(design, workload, strategy="serial")

    def timed(strategy):
        evaluator = Evaluator(search_budget=SEARCH_BUDGET)
        winners = []
        t0 = time.perf_counter()
        for _ in range(1 + BATCHED_SEARCH_ROUNDS):
            for design in designs:
                result = evaluator._search_mappings(
                    design, workload, strategy=strategy
                )
                winners.append(
                    (
                        result.cycles,
                        result.energy_pj,
                        result.dense.mapping.cache_key(),
                    )
                )
        return time.perf_counter() - t0, winners, evaluator

    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["search_batched_speedup_floor"]
    # Timing-ratio smoke on shared runners: allow one re-measure before
    # declaring the floor breached (winner equality is never retried).
    for attempts_left in (1, 0):
        serial_seconds, serial_winners, _ = timed("serial")
        batched_seconds, batched_winners, batched_evaluator = timed("batched")
        assert batched_winners == serial_winners, (
            "batched search diverged from the serial oracle"
        )
        if serial_seconds / batched_seconds >= floor or not attempts_left:
            break

    speedup = serial_seconds / batched_seconds
    searches = (1 + BATCHED_SEARCH_ROUNDS) * len(designs)
    candidate_stats = batched_evaluator.cache.stage("candidates").stats()
    summary = {
        "bench": "search_batched",
        "searches": searches,
        "serial_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "search_batched_speedup": round(speedup, 2),
        "batched_searches_per_sec": round(searches / batched_seconds, 1),
        "candidates_stage_hits": candidate_stats["hits"],
        "candidates_stage_misses": candidate_stats["misses"],
    }
    BATCHED_SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\n=== search_batched ===\n{json.dumps(summary, indent=2)}")

    # The three SAF variants share one mapspace: every search after the
    # very first replays the memoised candidate stream.
    assert candidate_stats["misses"] == 1, candidate_stats
    assert candidate_stats["hits"] == searches - 1, candidate_stats

    assert speedup >= floor, (
        f"batched search beat the serial per-candidate oracle only "
        f"{speedup:.2f}x (serial {serial_seconds:.3f}s -> batched "
        f"{batched_seconds:.3f}s); the committed floor is {floor}x"
    )


def _reset_analysis_memos() -> None:
    """Simulate a fresh process for the analysis work the persistent
    snapshot replaces: clear the process-global stages (tile-format)
    and the density-kernel LRUs before each timed phase, so the cold
    run cannot pre-warm them for the warm run — the snapshot is the
    only carrier of analysis warmth. The `divisors`/`factorizations`
    memos behind candidate *sampling* are deliberately left alone:
    both phases regenerate the identical candidate stream, so that
    cost is symmetric by construction, and clearing it would only add
    a shared constant that drowns the signal the floor gates."""
    from repro.common.cache import global_cache
    from repro.sparse import density

    global_cache().clear()
    for obj in vars(density).values():
        if callable(obj) and hasattr(obj, "cache_clear"):
            obj.cache_clear()


@pytest.mark.perf
def test_warm_start_smoke(tmp_path):
    """Persistent-tier warm start on the DSE traffic pattern.

    A cold evaluator runs the DSE search and spills its cache to the
    persistent store; a fresh evaluator then warm-starts from the
    snapshot and repeats the search. The warm run must beat the cold
    run by the committed ``warm_start_speedup_floor`` — the measure of
    what the on-disk tier saves a repeated CLI/CI invocation.

    The store location honours ``REPRO_CACHE_DIR`` (a temp directory
    otherwise), so CI can persist it between steps: when a prior
    process already left a snapshot, the warm run loads *that* one —
    exercising true cross-process key stability — and the
    ``REPRO_REQUIRE_WARM_START`` environment variable turns "a
    snapshot pre-existed" into a hard assertion for such second runs.

    Two fairness measures: the snapshot key is derived from the DSE
    content (arch/SAFs/workload/budget), so editing the bench scenario
    invalidates stale stores instead of wedging the warm assertions;
    and the process-global stages plus density-kernel memos are
    reset before *each* timed phase, so the cold run cannot pre-warm
    the warm run and the speedup isolates what the on-disk tier
    carries (candidate-sampling memos stay symmetric-warm; both
    phases pay that identical generation cost).
    """
    root = os.environ.get("REPRO_CACHE_DIR") or str(tmp_path / "store")
    store = PersistentCache(root=root)
    designs, workload = _dse_designs()
    content = [persistent_state_key(d, [workload]) for d in designs]
    key = "bench-warm-start-dse-" + hashlib.blake2b(
        repr((content, SEARCH_BUDGET)).encode(), digest_size=8
    ).hexdigest()
    preexisting = store.load(key) is not None
    if os.environ.get("REPRO_REQUIRE_WARM_START"):
        assert preexisting, (
            "REPRO_REQUIRE_WARM_START is set but no snapshot was found "
            f"under {store.store_dir}"
        )

    def attempt():
        _reset_analysis_memos()
        cold_evaluator = Evaluator(search_budget=SEARCH_BUDGET)
        t0 = time.perf_counter()
        candidates = _dse_search(cold_evaluator)
        cold_seconds = time.perf_counter() - t0
        if store.load(key) is None:
            cold_evaluator.persistent = store
            cold_evaluator.spill_cache(key)

        _reset_analysis_memos()  # snapshot = the only analysis warmth
        warm_evaluator = Evaluator(
            search_budget=SEARCH_BUDGET, persistent=store
        )
        imported = warm_evaluator.warm_start(key)
        assert imported > 0, "warm start installed nothing"
        t0 = time.perf_counter()
        _dse_search(warm_evaluator)
        warm_seconds = time.perf_counter() - t0
        return candidates, cold_seconds, warm_seconds, imported, warm_evaluator

    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["warm_start_speedup_floor"]
    # Timing-ratio smoke on shared runners: allow one re-measure before
    # declaring the floor breached (the functional hit-rate assertions
    # below are never retried).
    for attempts_left in (1, 0):
        candidates, cold_seconds, warm_seconds, imported, warm_evaluator = (
            attempt()
        )
        if cold_seconds / warm_seconds >= floor or not attempts_left:
            break

    speedup = cold_seconds / warm_seconds
    sparse_stats = warm_evaluator.cache.stage("sparse").stats()
    energy_stats = warm_evaluator.cache.stage("energy").stats()
    summary = {
        "bench": "warm_start",
        "persistent_preexisting": preexisting,
        "warm_entries_imported": imported,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_start_speedup": round(speedup, 2),
        "warm_candidates_per_sec": round(candidates / warm_seconds, 1),
        "warm_sparse_hit_rate": round(sparse_stats["hit_rate"], 4),
        "warm_energy_hit_rate": round(energy_stats["hit_rate"], 4),
    }
    WARM_SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\n=== warm_start ===\n{json.dumps(summary, indent=2)}")

    # Every sparse analysis (and micro tail) the warm run needed must
    # come from the snapshot: the search revisits the exact seeded
    # candidate stream the cold run explored.
    assert sparse_stats["hits"] > 0 and sparse_stats["misses"] == 0, (
        sparse_stats
    )
    assert energy_stats["misses"] == 0, energy_stats

    assert speedup >= floor, (
        f"persistent warm start sped the DSE search up only "
        f"{speedup:.2f}x (cold {cold_seconds:.3f}s -> warm "
        f"{warm_seconds:.3f}s); the committed floor is {floor}x"
    )


#: Candidate budget (and batch size) of the cold-search bench: one
#: large single-shot search with nothing cached — the first-invocation
#: traffic pattern the tensorized cold path (vectorized capacity
#: prefilter + batched dense nest analysis) is built for.
COLD_SEARCH_BUDGET = 512
#: Interleaved timing rounds per path; the minimum of each side is
#: compared, which cancels transient machine load that a single A/B
#: pair would fold into the ratio.
COLD_SEARCH_ROUNDS = 3


def _cold_design() -> tuple[Design, Workload]:
    """The cold-search scenario: a sparse conv2d searched from scratch
    on a two-level accelerator. Conv2d's seven dimensions make the
    capacity prefilter earn its keep (many sampled tilings overflow the
    16 KiB buffer), and the compressed-W + gated-compute SAF exercises
    the full sparse pipeline per surviving candidate."""
    arch = Architecture(
        "perf-cold",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Buffer", 16 * 1024, component="sram",
                         read_bandwidth=8, write_bandwidth=8),
        ],
        ComputeLevel("MAC", instances=16),
    )
    workload = Workload.uniform(
        conv2d(n=4, k=32, c=16, p=14, q=14, r=3, s=3),
        {"W": 0.3, "I": 0.5},
    )
    cp4 = FormatSpec([FormatRank(CoordinatePayload())] * 4)
    safs = SAFSpec(
        formats={("Buffer", "W"): cp4, ("DRAM", "W"): cp4},
        compute_safs=[gate_compute()],
    )
    constraints = MapspaceConstraints(spatial_dims={"Buffer": ["k", "c"]})
    return Design("cold-dse", arch, safs, constraints=constraints), workload


@pytest.mark.perf
def test_search_cold_smoke():
    """Fully tensorized cold search vs the scalar serial oracle.

    One 512-candidate search with every per-evaluator cache empty — the
    cost a user pays on the very first invocation, where the warm-start
    and candidate-memo tiers cannot help. The fast path (vectorized
    capacity prefilter + batched dense nest analysis, the defaults) is
    timed against the same code with both stages forced scalar
    (``prefilter_vectorized=False, dense_vectorized=False``), fresh
    evaluators each round, interleaved, min of each side. Winners must
    agree bit for bit (never retried).

    The scalar oracle is *faster* than the PR the floor is anchored to:
    it shares this tree's cross-cutting trims (memoised keep chains and
    spec accessors, slotted dataclasses, hash-memoised cache keys,
    combo-level sample validity), which the committed
    ``search_cold_oracle_pr5_factor`` corrects for — the factor is the
    measured wall-time ratio of the PR 5 checkout to this tree's scalar
    oracle on the same scenario, rounded *down* (see the baseline JSON
    comment for the reference measurements). The product of the same-run
    ratio and that factor is the cold speedup the committed
    ``search_cold_speedup_floor`` gates.
    """
    design, workload = _cold_design()

    def one_run(fast: bool):
        kwargs = {} if fast else dict(
            prefilter_vectorized=False, dense_vectorized=False
        )
        evaluator = Evaluator(search_budget=COLD_SEARCH_BUDGET, **kwargs)
        t0 = time.perf_counter()
        result = evaluator._search_mappings(
            design, workload, batch_size=COLD_SEARCH_BUDGET
        )
        seconds = time.perf_counter() - t0
        winner = (
            result.cycles,
            result.energy_pj,
            result.dense.mapping.cache_key(),
        )
        return seconds, winner, evaluator.dense_cache.stats()

    def measure():
        fast_seconds = oracle_seconds = float("inf")
        for _ in range(COLD_SEARCH_ROUNDS):
            seconds, fast_winner, fast_stats = one_run(fast=True)
            fast_seconds = min(fast_seconds, seconds)
            seconds, oracle_winner, _ = one_run(fast=False)
            oracle_seconds = min(oracle_seconds, seconds)
            assert fast_winner == oracle_winner, (
                "tensorized cold search diverged from the scalar oracle"
            )
        return fast_seconds, oracle_seconds, fast_stats

    one_run(fast=True), one_run(fast=False)  # warmup (process memos)

    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["search_cold_speedup_floor"]
    factor = baseline["search_cold_oracle_pr5_factor"]
    # Timing-ratio smoke on shared runners: allow one re-measure before
    # declaring the floor breached (winner equality is never retried).
    for attempts_left in (1, 0):
        fast_seconds, oracle_seconds, fast_stats = measure()
        if (oracle_seconds / fast_seconds) * factor >= floor or not attempts_left:
            break

    ratio = oracle_seconds / fast_seconds
    speedup = ratio * factor
    summary = {
        "bench": "search_cold",
        "candidates": COLD_SEARCH_BUDGET,
        "fast_seconds": round(fast_seconds, 4),
        "oracle_seconds": round(oracle_seconds, 4),
        "cold_candidates_per_sec": round(COLD_SEARCH_BUDGET / fast_seconds, 1),
        "search_cold_ratio_vs_oracle": round(ratio, 2),
        "search_cold_oracle_pr5_factor": factor,
        "search_cold_speedup": round(speedup, 2),
        "dense_cache_hit_rate": round(fast_stats["hit_rate"], 4),
    }
    COLD_SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\n=== search_cold ===\n{json.dumps(summary, indent=2)}")

    assert speedup >= floor, (
        f"tensorized cold search achieved only {speedup:.2f}x over the "
        f"PR 5 cold baseline ({ratio:.2f}x same-run vs the scalar "
        f"oracle x the committed {factor} oracle-vs-PR-5 factor; fast "
        f"{fast_seconds:.3f}s, oracle {oracle_seconds:.3f}s); the "
        f"committed floor is {floor}x"
    )
