"""Perf smoke for the fast-path evaluation engine.

Measures three throughput numbers that the fast path is responsible
for — fixed-mapping evaluations/sec under a SAF x density sweep (the
Fig. 17 co-design traffic pattern), mapspace-search candidates/sec
(the DSE traffic pattern), and sparse-postprocess evaluations/sec
(the vectorized + cache-served sparse modeling stage, compared against
the scalar no-cache oracle that matches the pre-vectorization
pipeline) — plus the dense-analysis cache hit rate. The numbers are
written to ``BENCH_perf_engine.json`` next to this file and checked
against the committed ``baseline_perf_engine.json``: the test fails if
a throughput regresses more than 30% below the baseline, or if the
sparse-postprocess stage falls below 3x its scalar oracle.

The committed baseline is deliberately conservative (roughly half of
the throughput measured on the reference machine) so that CI noise does
not trip it while order-of-magnitude regressions — e.g. reintroducing
scalar scipy pmf calls in the hot loop — still fail loudly.

Run:  pytest benchmarks/bench_perf_engine.py -q -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro import Design, Evaluator, SAFSpec, Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.designs import codesign
from repro.mapping.mapspace import MapspaceConstraints
from repro.sparse.formats import CoordinatePayload, FormatRank, FormatSpec
from repro.sparse.saf import SAFKind, double_sided, gate_compute, skip_compute

BASELINE_PATH = Path(__file__).parent / "baseline_perf_engine.json"
SUMMARY_PATH = Path(__file__).parent / "BENCH_perf_engine.json"

#: Fail when throughput drops below this fraction of the baseline.
REGRESSION_FLOOR = 0.7

SWEEP_DENSITIES = [1e-4, 1e-3, 1e-2, 0.06, 0.3]
SWEEP_ROUNDS = 3
SEARCH_BUDGET = 40
#: Times each (mapping, SAF, density) point is revisited — a (very
#: conservative) stand-in for evolution-strategy mappers and TeAAL-like
#: front-ends that re-evaluate the same einsums under many schedules.
SPARSE_ROUNDS = 6
#: The sparse-postprocess stage must beat its scalar no-cache oracle
#: (the pre-vectorization pipeline) by at least this factor.
SPARSE_SPEEDUP_FLOOR = 3.0


def _codesign_sweep(evaluator: Evaluator) -> int:
    """One Fig.17-style SAF x density sweep; returns evaluation count."""
    count = 0
    for density in SWEEP_DENSITIES:
        workload = Workload.uniform(
            matmul(1024, 1024, 1024), {"A": density, "B": density}
        )
        for dataflow, saf in codesign.ALL_COMBINATIONS:
            design = codesign.build_design(dataflow, saf)
            evaluator.evaluate(design, workload)
            count += 1
    return count


def _dse_search(evaluator: Evaluator) -> int:
    """One DSE-style mapspace search over three SAF variants; returns
    the nominal candidate count."""
    arch = Architecture(
        "perf-dse",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Buffer", 16 * 1024, component="sram",
                         read_bandwidth=8, write_bandwidth=8),
        ],
        ComputeLevel("MAC", instances=16),
    )
    workload = Workload.uniform(matmul(128, 128, 128), {"A": 0.2, "B": 0.2})
    cp2 = FormatSpec(
        [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
    )
    saf_choices = [
        SAFSpec(),
        SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            compute_safs=[gate_compute()],
        ),
        SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            storage_safs=double_sided(SAFKind.SKIP, "A", "B", "Buffer"),
            compute_safs=[skip_compute()],
        ),
    ]
    constraints = MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]})
    candidates = 0
    for index, safs in enumerate(saf_choices):
        design = Design(f"dse-{index}", arch, safs, constraints=constraints)
        result = evaluator.search_mappings(design, workload)
        assert result is not None
        candidates += SEARCH_BUDGET
    return candidates


def _sparse_stage_pairs():
    """(dense, safs) pairs of the codesign sweep, dense analyses shared
    the way the engine shares them (one per dataflow x density)."""
    evaluator = Evaluator()
    pairs = []
    for density in SWEEP_DENSITIES:
        workload = Workload.uniform(
            matmul(1024, 1024, 1024), {"A": density, "B": density}
        )
        for dataflow, saf in codesign.ALL_COMBINATIONS:
            design = codesign.build_design(dataflow, saf)
            mapping = design.mapping_for(workload)
            dense = evaluator._dense_analysis(design, workload, mapping)
            pairs.append((dense, design.safs))
    return pairs


def _bench_sparse_postprocess() -> dict:
    """Sparse-postprocess throughput: cached+vectorized vs the scalar
    no-cache oracle (the pre-vectorization pipeline).

    Both paths are timed with the process-global memos (tile-format
    stage, density kernels) and numpy already warm — the pre-PR
    pipeline had those too — so the ratio isolates what this PR adds:
    the batched arithmetic and the sparse-analysis cache stage.
    """
    from repro.sparse.postprocess import analyze_sparse

    pairs = _sparse_stage_pairs()
    for vectorized in (False, True):  # shared warmup for both paths
        for dense, safs in pairs:
            analyze_sparse(dense, safs, vectorized=vectorized)

    t0 = time.perf_counter()
    oracle = None
    for _ in range(SPARSE_ROUNDS):
        for dense, safs in pairs:
            oracle = analyze_sparse(dense, safs, vectorized=False)
    scalar_seconds = time.perf_counter() - t0

    evaluator = Evaluator()
    t0 = time.perf_counter()
    fast = None
    for _ in range(SPARSE_ROUNDS):
        for dense, safs in pairs:
            fast = evaluator._sparse_analysis(dense, safs)
    fast_seconds = time.perf_counter() - t0

    # The fast path must agree bit-for-bit with the oracle (spot check
    # on the last pair; the test suite covers every bundled design).
    assert fast.compute.actual == oracle.compute.actual
    assert fast.compute.gated == oracle.compute.gated
    for key, actions in oracle.actions.items():
        other = fast.actions[key]
        assert other.data_reads.actual == actions.data_reads.actual
        assert other.data_writes.actual == actions.data_writes.actual

    evals = SPARSE_ROUNDS * len(pairs)
    per_sec = evals / fast_seconds
    scalar_per_sec = evals / scalar_seconds
    return {
        "sparse_evals_per_sec": round(per_sec, 1),
        "sparse_scalar_evals_per_sec": round(scalar_per_sec, 1),
        "sparse_speedup_vs_scalar": round(per_sec / scalar_per_sec, 2),
        "sparse_evaluations": evals,
        "sparse_seconds": round(fast_seconds, 4),
        "sparse_cache_hit_rate": round(
            evaluator.sparse_cache.hit_rate, 4
        ),
    }


@pytest.mark.perf
def test_perf_engine_smoke():
    # --- fixed-mapping evaluation throughput (SAF x density sweep) ---
    evaluator = Evaluator()
    _codesign_sweep(evaluator)  # warm caches (kernel + dense-analysis)
    t0 = time.perf_counter()
    evals = sum(_codesign_sweep(evaluator) for _ in range(SWEEP_ROUNDS))
    sweep_seconds = time.perf_counter() - t0
    evals_per_sec = evals / sweep_seconds
    cache_stats = evaluator.dense_cache.stats()

    # --- mapspace-search throughput (DSE pattern) ---
    search_evaluator = Evaluator(search_budget=SEARCH_BUDGET)
    t0 = time.perf_counter()
    candidates = _dse_search(search_evaluator)
    search_seconds = time.perf_counter() - t0
    search_candidates_per_sec = candidates / search_seconds

    # --- sparse-postprocess throughput (vectorized + cache stage) ---
    sparse_summary = _bench_sparse_postprocess()

    summary = {
        "bench": "perf_engine",
        "evals_per_sec": round(evals_per_sec, 1),
        "sweep_evaluations": evals,
        "sweep_seconds": round(sweep_seconds, 4),
        "dense_cache_hit_rate": round(cache_stats["hit_rate"], 4),
        "dense_cache_hits": cache_stats["hits"],
        "dense_cache_misses": cache_stats["misses"],
        "search_candidates_per_sec": round(search_candidates_per_sec, 1),
        "search_candidates": candidates,
        "search_seconds": round(search_seconds, 4),
        **sparse_summary,
    }
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\n=== perf_engine ===\n{json.dumps(summary, indent=2)}")

    # The codesign sweep re-evaluates the same (einsum, arch, mapping)
    # per density/SAF variant; a healthy dense cache serves most of it.
    assert cache_stats["hit_rate"] > 0.5, cache_stats

    baseline = json.loads(BASELINE_PATH.read_text())
    for metric in (
        "evals_per_sec",
        "search_candidates_per_sec",
        "sparse_evals_per_sec",
    ):
        floor = baseline[metric] * REGRESSION_FLOOR
        assert summary[metric] >= floor, (
            f"{metric} regressed: {summary[metric]:.1f}/s is below "
            f"{REGRESSION_FLOOR:.0%} of the committed baseline "
            f"{baseline[metric]:.1f}/s"
        )

    # Acceptance: the vectorized + cache-served sparse stage must beat
    # the scalar no-cache oracle (the pre-vectorization pipeline) 3x.
    assert summary["sparse_speedup_vs_scalar"] >= SPARSE_SPEEDUP_FLOOR, (
        f"sparse-postprocess speedup {summary['sparse_speedup_vs_scalar']}x "
        f"is below the {SPARSE_SPEEDUP_FLOOR}x floor"
    )
