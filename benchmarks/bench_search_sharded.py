"""Perf + correctness smoke for distributed sharded search.

Three phases, each against real ``repro serve --worker`` daemons booted
by :class:`repro.distributed.LocalWorkerFleet` on unix sockets:

* **Identity** — every bundled design family runs one sampled search
  through a 2-worker fleet and in-process with ``strategy="batched"``;
  the winning score, winning index, and full Pareto frontier must be
  *bit-identical*. This is the tentpole guarantee of the distributed
  subsystem: sharding is an execution detail, never a semantics change.
* **Fault injection** — a capacity-checked search (live witness
  traffic) runs on 2 workers while one worker is SIGKILLed the moment
  its shard reports progress; the coordinator must reassign the dead
  shard and still produce the bit-identical single-host outcome.
* **Scaling** — a 4-worker sharded search races the single-host
  batched scan on an evaluation-heavy DSE scenario; the best-of-rounds
  speedup must clear the committed ``search_sharded_speedup_floor``.
  Sharding splits the evaluation work but not the (serial) stream
  planning, so the scenario is chosen to make evaluation dominate:
  a 3-level hierarchy (deeper per-candidate analysis) over a mapspace
  big enough to stay in sampled mode. The phase needs one core per
  worker to mean anything and skips (loudly) on smaller machines —
  CI enforces the floor on its multi-core runners.

The floor lives in ``baseline_perf_engine.json`` (see the comment
there); measured numbers are written to ``BENCH_search_sharded.json``
next to this file. Fleets run ``--cold`` so the persistent tier cannot
warm one side of an A/B comparison from the other side's spill.

Run:  pytest benchmarks/bench_search_sharded.py -q -s
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro import Design, SAFSpec, Workload, matmul
from repro.api.jobs import SearchJob
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.designs import codesign, dstc, eyeriss, eyeriss_v2, scnn, stc, toy
from repro.designs.common import conv_as_gemm
from repro.distributed import LocalWorkerFleet, sharded_search
from repro.mapping.mapspace import MapspaceConstraints
from repro.model.engine import Evaluator
from repro.sparse.density import FixedStructuredDensity, UniformDensity
from repro.sparse.formats import CoordinatePayload, FormatRank, FormatSpec
from repro.sparse.saf import SAFKind, double_sided, skip_compute
from repro.workload.nets import alexnet, mobilenet_v1, resnet50

BASELINE_PATH = Path(__file__).parent / "baseline_perf_engine.json"
SUMMARY_PATH = Path(__file__).parent / "BENCH_search_sharded.json"

#: Search budget for the per-design identity sweep (small: the sweep
#: covers eight designs and correctness does not depend on budget).
IDENTITY_BUDGET = 12
#: Budget for the fault-injection search — long enough that the kill
#: lands mid-scan, capacity-checked so witness traffic is real.
KILL_BUDGET = 8_000
#: Budget for the timed scaling rounds (sampled mode on the scenario
#: below: the mapspace is ~2.7M points, so the stream is the budget).
SCALE_BUDGET = 16_000
#: Workers in the scaling phase; the committed floor is defined at
#: this fleet size.
SCALE_WORKERS = 4
#: Timed rounds in the scaling phase, each on its own stream seed so
#: neither side can reuse warm per-mapping analysis across rounds; the
#: best round is compared against the floor (cancels transient load),
#: with one retry round before declaring a breach.
SCALE_SEEDS = (7, 8)
RETRY_SEED = 9


def _update_summary(section: dict) -> None:
    data = {"bench": "search_sharded"}
    if SUMMARY_PATH.exists():
        data.update(json.loads(SUMMARY_PATH.read_text()))
    data.update(section)
    SUMMARY_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _frontier_key(frontier) -> list:
    return [
        (point.index, point.score, point.objectives)
        for point in frontier.ordered()
    ]


def _assert_identical(name: str, ref, sharded) -> None:
    assert sharded.best_score == ref.best_score, name
    assert sharded.best_index == ref.best_index, name
    assert sharded.strategy == "batched", name
    assert _frontier_key(sharded.frontier) == _frontier_key(ref.frontier), name


# ----------------------------------------------------------------------
# Identity: every bundled design family, 2-worker fleet vs in-process

def _tc_workload(weight_model):
    gemm = conv_as_gemm(resnet50()[10])
    return Workload(
        gemm,
        {"A": weight_model, "B": UniformDensity(0.65, gemm.tensor_size("B"))},
    )


def _identity_cases():
    """One (name, design, workload) per bundled design family — the
    same pairings the serve bench evaluates, here as mapspace searches
    (the bundled mapping factories are bypassed: the mapper scans each
    design's — unconstrained — mapspace with a seeded sample stream)."""
    mm = Workload.uniform(matmul(64, 64, 64), {"A": 0.2, "B": 0.2})
    conv = Workload.uniform(alexnet()[2].spec, {"I": 0.5})
    mobile = mobilenet_v1()[3]
    dataflow, saf = codesign.ALL_COMBINATIONS[0]
    return [
        ("toy-bitmask", toy.bitmask_design(), mm),
        ("toy-coordinate-list", toy.coordinate_list_design(), mm),
        ("eyeriss", eyeriss.eyeriss_design(), conv),
        (
            "eyeriss-v2-pe",
            eyeriss_v2.eyeriss_v2_pe_design(),
            Workload.uniform(mobile.spec, {"I": 0.55, "W": 0.4}),
        ),
        ("scnn", scnn.scnn_design(), Workload.uniform(
            alexnet()[2].spec, {"I": 0.4, "W": 0.3}
        )),
        ("dstc", dstc.dstc_design(), _tc_workload(UniformDensity(0.4, 1024))),
        ("stc", stc.stc_design(), _tc_workload(FixedStructuredDensity(2, 4))),
        (
            f"codesign-{dataflow}-{saf}",
            codesign.build_design(dataflow, saf),
            Workload.uniform(matmul(256, 256, 256), {"A": 0.06, "B": 0.06}),
        ),
    ]


@pytest.mark.perf
def test_sharded_identity_across_bundled_designs():
    cases = _identity_cases()
    with LocalWorkerFleet(2, cold=True) as fleet:
        for name, design, workload in cases:
            evaluator = Evaluator(
                search_budget=IDENTITY_BUDGET, check_capacity=False
            )
            ref = evaluator._search_full(
                design, workload, strategy="batched"
            )
            outcome, stats = sharded_search(
                Evaluator(
                    search_budget=IDENTITY_BUDGET, check_capacity=False
                ),
                SearchJob(design, workload),
                fleet.addresses,
                shards=2,
                worker_timeout=300.0,
            )
            _assert_identical(name, ref, outcome)
            assert stats["shards"] >= 1, name

    _update_summary({
        "identity_designs": [name for name, _, _ in cases],
        "identity_bit_identical": True,
    })
    print(f"\n=== sharded identity ===\n{len(cases)} bundled designs "
          "bit-identical (2-worker fleet vs single-host batched)")


# ----------------------------------------------------------------------
# Shared DSE scenario for the fault-injection and scaling phases

def _dse_scenario():
    """An evaluation-heavy scenario: 3-level hierarchy (deep
    per-candidate analysis), sparse formats and SAFs on A, a mapspace
    of ~2.7M points so every budget here stays in sampled mode."""
    arch = Architecture(
        "sharded-dse",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("L2", 128 * 1024, component="sram",
                         read_bandwidth=16, write_bandwidth=16),
            StorageLevel("Buffer", 8 * 1024, component="sram",
                         read_bandwidth=32, write_bandwidth=32),
        ],
        ComputeLevel("MAC", instances=16),
    )
    cp2 = FormatSpec(
        [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
    )
    safs = SAFSpec(
        formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
        storage_safs=double_sided(SAFKind.SKIP, "A", "B", "Buffer"),
        compute_safs=[skip_compute()],
    )
    constraints = MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]})
    design = Design("sharded-dse", arch, safs, constraints=constraints)
    workload = Workload.uniform(matmul(512, 512, 512), {"A": 0.2, "B": 0.2})
    return design, workload


# ----------------------------------------------------------------------
# Fault injection: kill a worker mid-shard, demand the same answer

@pytest.mark.perf
def test_sharded_identity_survives_worker_kill():
    design, workload = _dse_scenario()
    job = SearchJob(design, workload, batch_size=64)
    evaluator = Evaluator(search_budget=KILL_BUDGET, search_seed=7)
    ref = evaluator._search_full(
        design, workload, batch_size=64, strategy="batched"
    )

    with LocalWorkerFleet(2, cold=True) as fleet:
        killed = threading.Event()

        def _on_progress(info):
            # First substantive frame from shard 0: its worker is now
            # mid-scan — kill it (from a thread: this callback runs on
            # the worker's own monitor thread).
            if not isinstance(info, dict) or "event" in info:
                return
            if info.get("shard") == 0 and not killed.is_set():
                killed.set()
                threading.Thread(target=fleet.kill, args=(0,)).start()

        outcome, stats = sharded_search(
            Evaluator(search_budget=KILL_BUDGET, search_seed=7),
            job, fleet.addresses, shards=2,
            progress=_on_progress, worker_timeout=300.0,
        )

    assert killed.is_set(), "fault was never injected"
    _assert_identical("kill-injection", ref, outcome)
    _update_summary({
        "kill_injection_bit_identical": True,
        "kill_injection_reassigned": stats["reassigned"],
        "kill_injection_withheld": stats["withheld"],
        "kill_injection_rejected": stats["rejected"],
    })
    print("\n=== fault injection ===\nworker SIGKILLed mid-shard: "
          f"reassigned={stats['reassigned']}, outcome bit-identical")


# ----------------------------------------------------------------------
# Scaling: 4-worker sharded search vs single-host, committed floor

def _timed_round(fleet, seed: int) -> dict:
    design, workload = _dse_scenario()
    job = SearchJob(design, workload, batch_size=256)

    t0 = time.perf_counter()
    ref = Evaluator(
        search_budget=SCALE_BUDGET, search_seed=seed, check_capacity=False
    )._search_full(design, workload, batch_size=256, strategy="batched")
    single_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    outcome, stats = sharded_search(
        Evaluator(
            search_budget=SCALE_BUDGET, search_seed=seed,
            check_capacity=False,
        ),
        job, fleet.addresses, shards=SCALE_WORKERS,
        worker_timeout=300.0,
    )
    sharded_s = time.perf_counter() - t0

    _assert_identical(f"scaling-seed-{seed}", ref, outcome)
    assert stats["mode"] == "sampled", stats["mode"]
    return {
        "seed": seed,
        "single_host_s": round(single_s, 3),
        "sharded_s": round(sharded_s, 3),
        "speedup": round(single_s / sharded_s, 3),
    }


@pytest.mark.perf
def test_search_sharded_speedup_floor():
    cores = os.cpu_count() or 1
    if cores < SCALE_WORKERS:
        _update_summary({
            "scaling_skipped": f"{cores} cores < {SCALE_WORKERS} workers",
        })
        pytest.skip(
            f"scaling floor needs >= {SCALE_WORKERS} cores to be "
            f"meaningful; this machine has {cores} (CI enforces it)"
        )

    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["search_sharded_speedup_floor"]
    rounds = []
    with LocalWorkerFleet(SCALE_WORKERS, cold=True) as fleet:
        for seed in SCALE_SEEDS:
            rounds.append(_timed_round(fleet, seed))
        if max(r["speedup"] for r in rounds) < floor:
            rounds.append(_timed_round(fleet, RETRY_SEED))

    best = max(rounds, key=lambda r: r["speedup"])
    _update_summary({
        "scaling_workers": SCALE_WORKERS,
        "scaling_budget": SCALE_BUDGET,
        "scaling_rounds": rounds,
        "scaling_speedup": best["speedup"],
        "search_sharded_speedup_floor": floor,
    })
    print(f"\n=== sharded scaling ===\nbest of {len(rounds)} rounds: "
          f"{best['single_host_s']}s single-host / {best['sharded_s']}s "
          f"sharded = {best['speedup']}x at {SCALE_WORKERS} workers "
          f"(committed floor {floor}x)")
    assert best["speedup"] >= floor, (
        f"sharded search speedup regressed: best of {len(rounds)} rounds "
        f"{best['speedup']}x at {SCALE_WORKERS} workers is below the "
        f"committed floor {floor}x"
    )
