"""Fig. 9: fiber density probabilities for fibers of various shapes in
a tensor with 50% randomly distributed nonzeros.

The hypergeometric density model must show: small fibers have extreme
density spread (a 1-element fiber is 0% or 100% dense); larger fibers
concentrate around the tensor density, i.e. a tile's shape varies
inversely with the deviation in its density. We also cross-check the
model against an actual random tensor.
"""

import math
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _support import print_table

from repro.sparse.density import ActualDataDensity, UniformDensity
from repro.tensor.generator import uniform_random_tensor

TENSOR_SIZE = 4096
DENSITY = 0.5
SHAPES = [1, 2, 4, 8, 16, 64, 256]


def run_fig09():
    model = UniformDensity(DENSITY, tensor_size=TENSOR_SIZE)
    data = uniform_random_tensor((TENSOR_SIZE,), DENSITY, seed=0)
    actual = ActualDataDensity(data)
    rows = []
    for shape in SHAPES:
        dist = model.occupancy_distribution(shape)
        mean = sum(k * p for k, p in dist)
        std = math.sqrt(sum((k - mean) ** 2 * p for k, p in dist))
        rows.append(
            [
                shape,
                model.prob_empty(shape),
                mean / shape,
                std / shape,
                actual.prob_empty(shape),
            ]
        )
    return rows


def test_fig09_fiber_density(benchmark):
    rows = benchmark.pedantic(run_fig09, rounds=1, iterations=1)
    print_table(
        "Fig. 9: fiber density probability vs fiber shape (50% tensor)",
        ["shape", "P(empty)", "mean density", "density std", "empirical P(empty)"],
        rows,
    )
    benchmark.extra_info["rows"] = rows

    # Mean density equals tensor density at every shape.
    assert all(abs(r[2] - DENSITY) < 1e-9 for r in rows)
    # Deviation shrinks as fibers grow (the paper's key observation).
    stds = [r[3] for r in rows]
    assert all(a > b for a, b in zip(stds, stds[1:]))
    # Model tracks the actual data.
    for row in rows:
        assert abs(row[1] - row[4]) < 0.05
