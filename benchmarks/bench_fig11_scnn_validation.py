"""Fig. 11: SCNN runtime-activity validation.

The paper validates Sparseloop against SCNN's author-provided
statistical simulator, achieving <1% error on every storage/compute
component's activity counts. Our stand-in baseline is the cycle-level
reference simulator running actual uniformly-random data through the
same SCNN mapping; the analytical model (hypergeometric density) must
match its per-component activity within a few percent.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _support import geomean_error, print_table, shrink_dims

from repro import Workload
from repro.dataflow import analyze_dataflow
from repro.designs import scnn
from repro.refsim import CycleLevelSimulator
from repro.sparse.postprocess import analyze_sparse
from repro.tensor.generator import uniform_random_tensor
from repro.workload.nets import network

DENSITY_I = 0.45
DENSITY_W = 0.35


SEEDS = [3, 11]


def _one_seed(design, spec, wl, mapping, seed):
    data = {
        "I": uniform_random_tensor(
            spec.tensor_shape("I"), DENSITY_I, seed=seed
        ),
        "W": uniform_random_tensor(
            spec.tensor_shape("W"), DENSITY_W, seed=seed + 1
        ),
        "O": np.zeros(spec.tensor_shape("O")),
    }
    sim = CycleLevelSimulator(spec, design.arch, mapping, data, design.safs)
    return sim.run()


def run_fig11():
    design = scnn.scnn_design()
    layer = network("vgg16")[7]  # conv4_1
    spec = shrink_dims(layer.spec, {"k": 32, "c": 16, "p": 7, "q": 7})
    wl = Workload.uniform(spec, {"I": DENSITY_I, "W": DENSITY_W})
    mapping = design.mapping_for(wl)

    runs = [_one_seed(design, spec, wl, mapping, s) for s in SEEDS]
    dense = analyze_dataflow(wl, design.arch, mapping)
    sparse = analyze_sparse(dense, design.safs)

    def averaged(table, key):
        return sum(getattr(run_counts, table)[key].actual for run_counts in runs) / len(runs)

    rows = []
    pairs = []
    keys_reads = sorted(
        {k for run_counts in runs for k in run_counts.reads}
    )
    keys_writes = sorted(
        {k for run_counts in runs for k in run_counts.writes}
    )
    for level, tensor in keys_reads:
        simulated = averaged("reads", (level, tensor))
        if simulated <= 0:
            continue
        model = sparse.at(level, tensor).data_reads.actual
        err = abs(model - simulated) / simulated
        rows.append([f"{level}/{tensor} reads", simulated, model, 100 * err])
        pairs.append((simulated, model))
    for level, tensor in keys_writes:
        simulated = averaged("writes", (level, tensor))
        if simulated <= 0:
            continue
        model = sparse.at(level, tensor).data_writes.actual
        err = abs(model - simulated) / simulated
        rows.append([f"{level}/{tensor} writes", simulated, model, 100 * err])
        pairs.append((simulated, model))
    sim_computes = sum(r.computes.actual for r in runs) / len(runs)
    rows.append(
        [
            "computes",
            sim_computes,
            sparse.compute.actual,
            100 * abs(sparse.compute.actual - sim_computes) / sim_computes,
        ]
    )
    pairs.append((sim_computes, sparse.compute.actual))
    return rows, geomean_error(pairs)


def test_fig11_scnn_validation(benchmark):
    rows, avg_error = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    print_table(
        "Fig. 11: SCNN runtime activity (simulated vs modeled)",
        ["component", "simulated", "modeled", "error %"],
        rows,
    )
    print(f"average error: {100 * avg_error:.2f}%  (paper: <1%)")
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["avg_error"] = avg_error

    # The paper's claim: <1% error on every component's activity.
    assert avg_error < 0.01
    for row in rows:
        assert row[3] < 1.0, f"{row[0]} error {row[3]:.2f}% exceeds 1%"
