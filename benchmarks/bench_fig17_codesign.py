"""Fig. 17: co-design of dataflow, SAFs and sparsity (Sec 7.2).

Normalized EDP of the four Table 8 combinations running spMspM across
operand densities from hyper-sparse (scientific/graph workloads) to NN
regimes. Claims to reproduce:

* the best design is a function of the target density (crossover),
* ReuseAZ.HierarchicalSkip wins for hyper-sparse workloads (early
  off-chip elimination),
* ReuseABZ.InnermostSkip wins for denser (NN) workloads,
* ReuseABZ.HierarchicalSkip — the "most features" design — is never
  the best: the ReuseABZ dataflow leaves the off-chip intersection
  with leader tiles that are almost never empty (Fig. 10 pricing).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _support import print_table

from repro import Session, Workload, matmul
from repro.designs import codesign

DENSITIES = [1e-5, 1e-4, 1e-3, 1e-2, 0.06, 0.15, 0.3]
SHAPE = (1024, 1024, 1024)


def run_fig17():
    ev = Session()
    rows = []
    winners = {}
    for density in DENSITIES:
        wl = Workload.uniform(
            matmul(*SHAPE), {"A": density, "B": density}
        )
        edps = {}
        for dataflow, saf in codesign.ALL_COMBINATIONS:
            design = codesign.build_design(dataflow, saf)
            edps[f"{dataflow}.{saf}"] = ev.evaluate(design, wl).edp
        base = edps["ReuseABZ.InnermostSkip"]
        rows.append(
            [density] + [edps[f"{d}.{s}"] / base for d, s in codesign.ALL_COMBINATIONS]
        )
        winners[density] = min(edps, key=edps.get)
    return rows, winners


def test_fig17_codesign(benchmark):
    rows, winners = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    names = [f"{d}.{s}" for d, s in codesign.ALL_COMBINATIONS]
    print_table(
        "Fig. 17: EDP normalized to ReuseABZ.InnermostSkip",
        ["density", *names],
        rows,
    )
    print("winners:", {f"{d:g}": w for d, w in winners.items()})
    benchmark.extra_info["rows"] = rows

    # The best design depends on the density regime.
    assert len(set(winners.values())) > 1
    # Hyper-sparse: early off-chip elimination wins.
    assert winners[1e-4] == "ReuseAZ.HierarchicalSkip"
    # NN regime: on-chip reuse with innermost intersection wins.
    assert winners[0.3] == "ReuseABZ.InnermostSkip"
    # The "all features" design is never the best.
    assert "ReuseABZ.HierarchicalSkip" not in winners.values()