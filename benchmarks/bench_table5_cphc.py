"""Table 5: modeling speed in computes simulated per host cycle (CPHC).

The paper reports CPHCs in the thousands for Sparseloop on full DNNs,
versus < 0.5 for the cycle-level STONNE simulator — over 2000x faster.
We measure our analytical model's CPHC on the same four networks and
our own cycle-level simulator's CPHC on a workload slice (simulating a
full network at cycle level is precisely what is intractable).

Note: the original is C++; this reproduction is pure Python, so the
absolute CPHCs are lower on both sides, but the *ratio* — the claim —
is preserved (and larger, since the analytical side does statistical
work once per layer while the simulator pays per compute).
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _support import HOST_HZ, dnn_densities, print_table, shrink_dims

from repro import Session, Workload
from repro.designs import eyeriss, eyeriss_v2, scnn
from repro.refsim import CycleLevelSimulator
from repro.tensor.generator import uniform_random_tensor
from repro.workload.nets import network

NETWORKS = ["resnet50", "bert_base", "vgg16", "alexnet"]
DESIGNS = {
    "Eyeriss": eyeriss.eyeriss_design,
    "Eyeriss V2 PE": eyeriss_v2.eyeriss_v2_pe_design,
    "SCNN": scnn.scnn_design,
}


def _cphc_analytical(design_factory, net_name):
    design = design_factory()
    layers = network(net_name)
    ev = Session(check_capacity=False)
    start = time.perf_counter()
    total_computes = 0
    for layer in layers:
        wl = Workload.uniform(layer.spec, dnn_densities(layer), name=layer.name)
        ev.evaluate(design, wl)
        total_computes += layer.total_operations
    elapsed = time.perf_counter() - start
    return total_computes / (elapsed * HOST_HZ)


def _cphc_refsim():
    """Cycle-level CPHC on a small conv slice with actual data."""
    design = scnn.scnn_design()
    layer = network("alexnet")[2]
    spec = shrink_dims(layer.spec, {"k": 8, "c": 8, "p": 4, "q": 4})
    data = {
        t.name: uniform_random_tensor(
            spec.tensor_shape(t.name), 0.5 if not t.is_output else 0.0, seed=1
        )
        for t in spec.tensors
    }
    data[spec.output.name] = np.zeros(spec.tensor_shape(spec.output.name))
    wl = Workload.uniform(spec, dnn_densities(layer))
    mapping = design.mapping_for(wl)
    sim = CycleLevelSimulator(spec, design.arch, mapping, data, design.safs)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return spec.total_operations / (elapsed * HOST_HZ)


def run_table5():
    table = {}
    for design_name, factory in DESIGNS.items():
        table[design_name] = {
            net: _cphc_analytical(factory, net) for net in NETWORKS
        }
    refsim_cphc = _cphc_refsim()
    return table, refsim_cphc


def test_table5_cphc(benchmark):
    table, refsim_cphc = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    rows = [
        [name, *(f"{table[name][net]:.3g}" for net in NETWORKS)]
        for name in DESIGNS
    ]
    print_table(
        "Table 5: computes simulated per host cycle (CPHC)",
        ["design", *NETWORKS],
        rows,
    )
    best = max(v for per in table.values() for v in per.values())
    ratio = best / refsim_cphc
    print(f"cycle-level simulator CPHC: {refsim_cphc:.4g}")
    print(f"analytical / cycle-level speed ratio: {ratio:.3g}x")
    benchmark.extra_info["cphc"] = table
    benchmark.extra_info["refsim_cphc"] = refsim_cphc

    # The paper's claim: analytical modeling is >2000x faster than
    # cycle-level simulation.
    assert ratio > 2000
    # And every analytical CPHC beats the cycle-level baseline by far.
    for per_net in table.values():
        for cphc in per_net.values():
            assert cphc > 100 * refsim_cphc
