"""Fig. 1: processing speed and energy of bitmask vs coordinate-list
designs across matmul operand densities.

Paper's claims to reproduce:
* bitmask never improves processing speed; coordinate list does,
* at low density coordinate list wins on both axes,
* as tensors densify, coordinate list's per-nonzero metadata overhead
  makes it lose on energy (crossover) while bitmask approaches dense.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _support import print_table

from repro import Session, Workload, matmul
from repro.designs import toy

DENSITIES = [0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0]
SHAPE = (256, 256, 256)


def run_fig01():
    ev = Session()
    designs = {
        "dense": toy.dense_design(),
        "bitmask": toy.bitmask_design(),
        "coordinate-list": toy.coordinate_list_design(),
    }
    rows = []
    for density in DENSITIES:
        wl = Workload.uniform(
            matmul(*SHAPE), {"A": density, "B": density}
        )
        results = {
            name: ev.evaluate(design, wl)
            for name, design in designs.items()
        }
        base = results["dense"]
        rows.append(
            [
                density,
                base.cycles / results["bitmask"].cycles,
                base.cycles / results["coordinate-list"].cycles,
                base.energy_pj / results["bitmask"].energy_pj,
                base.energy_pj / results["coordinate-list"].energy_pj,
            ]
        )
    return rows


def test_fig01_motivation(benchmark):
    rows = benchmark.pedantic(run_fig01, rounds=1, iterations=1)
    print_table(
        "Fig. 1: speedup & energy efficiency vs dense (higher = better)",
        ["density", "bm speedup", "cl speedup", "bm energy eff", "cl energy eff"],
        rows,
    )
    benchmark.extra_info["rows"] = rows

    by_density = {r[0]: r for r in rows}
    # Bitmask never changes processing speed.
    assert all(abs(r[1] - 1.0) < 1e-6 for r in rows)
    # Coordinate list is faster when sparse.
    assert by_density[0.05][2] > 5.0
    # Energy crossover: coordinate list wins sparse, loses dense.
    assert by_density[0.1][4] > by_density[0.1][3]
    assert by_density[1.0][4] < by_density[1.0][3]
