"""Fig. 12: Eyeriss V2 PE processing-latency validation on MobileNet.

The paper validates PE cycle counts against an actual-sparsity-pattern
baseline: with a uniform density model Sparseloop stays >99% accurate
in total and tracks per-layer trends, but layers with both operands
compressed show up to ~7% error from the statistical approximation of
the intersection ratio; switching to the actual-data density model
closes the gap.

Our baseline is the cycle-level simulator on downscaled MobileNet
layers with actual random data.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _support import print_table, shrink_dims

from repro import Workload
from repro.dataflow import analyze_dataflow
from repro.designs import eyeriss_v2
from repro.micro.latency import compute_latency
from repro.refsim import CycleLevelSimulator
from repro.sparse.density import ActualDataDensity, UniformDensity
from repro.sparse.postprocess import analyze_sparse
from repro.tensor.generator import uniform_random_tensor
from repro.workload.nets import mobilenet_v1

DENSITY_I = 0.55
DENSITY_W = 0.40
LAYER_NAMES = ["pw2", "dw3", "pw3", "pw5", "pw7"]
CAPS = {"c": 16, "k": 16, "p": 4, "q": 4}


def _model_cycles(design, spec, densities):
    wl = Workload(spec, dict(densities))
    mapping = design.mapping_for(wl)
    dense = analyze_dataflow(wl, design.arch, mapping)
    sparse = analyze_sparse(dense, design.safs)
    return compute_latency(design.arch, dense, sparse).cycles


def run_fig12():
    design = eyeriss_v2.eyeriss_v2_pe_design()
    layers = {l.name: l for l in mobilenet_v1()}
    rows = []
    totals = {"sim": 0.0, "uniform": 0.0, "actual": 0.0}
    for name in LAYER_NAMES:
        spec = shrink_dims(layers[name].spec, CAPS)
        seed = sum(ord(ch) for ch in name)  # deterministic per layer
        data_i = uniform_random_tensor(
            spec.tensor_shape("I"), DENSITY_I, seed=seed
        )
        data_w = uniform_random_tensor(
            spec.tensor_shape("W"), DENSITY_W, seed=seed + 1
        )
        data = {
            "I": data_i,
            "W": data_w,
            "O": np.zeros(spec.tensor_shape("O")),
        }
        wl = Workload.uniform(spec, {"I": DENSITY_I, "W": DENSITY_W})
        mapping = design.mapping_for(wl)
        sim = CycleLevelSimulator(
            spec, design.arch, mapping, data, design.safs
        )
        sim_cycles = sim.run().cycles

        uniform_cycles = _model_cycles(
            design,
            spec,
            {
                "I": UniformDensity(DENSITY_I, spec.tensor_size("I")),
                "W": UniformDensity(DENSITY_W, spec.tensor_size("W")),
            },
        )
        actual_cycles = _model_cycles(
            design,
            spec,
            {"I": ActualDataDensity(data_i), "W": ActualDataDensity(data_w)},
        )
        totals["sim"] += sim_cycles
        totals["uniform"] += uniform_cycles
        totals["actual"] += actual_cycles
        rows.append(
            [
                name,
                sim_cycles,
                uniform_cycles,
                100 * abs(uniform_cycles - sim_cycles) / sim_cycles,
                actual_cycles,
                100 * abs(actual_cycles - sim_cycles) / sim_cycles,
            ]
        )
    return rows, totals


def test_fig12_eyeriss_v2(benchmark):
    rows, totals = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    print_table(
        "Fig. 12: Eyeriss V2 PE latency (baseline vs density models)",
        ["layer", "baseline", "uniform", "err %", "actual-data", "err %"],
        rows,
    )
    total_err_uniform = abs(totals["uniform"] - totals["sim"]) / totals["sim"]
    total_err_actual = abs(totals["actual"] - totals["sim"]) / totals["sim"]
    print(
        f"total-cycle accuracy: uniform {100 * (1 - total_err_uniform):.2f}% "
        f"(paper: >99%), actual-data {100 * (1 - total_err_actual):.2f}%"
    )
    benchmark.extra_info["rows"] = rows

    # Total cycles accuracy >99% with both density models (paper
    # claims >99% for uniform and exactness for actual-data; our
    # baseline differs slightly since it is a full simulator, not an
    # analytical model over actual patterns).
    assert total_err_uniform < 0.015
    assert total_err_actual < 0.015
    # Per-layer error bounded near the paper's 7% worst case.
    for row in rows:
        assert row[3] < 10.0
