"""Table 6: validation summary across designs.

Aggregates the per-design validation benches into the paper's summary:
average modeling error per design, all within the 0.1%-8% band. STC's
validation is included directly: with fully-defined 2:4 structured
behaviour the model produces an exact 2x speedup (100% accuracy).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _support import print_table

from bench_fig11_scnn_validation import run_fig11
from bench_fig12_eyeriss_v2 import run_fig12
from bench_table7_eyeriss_compression import run_table7

from repro import Session, Workload
from repro.designs import dstc, stc
from repro.designs.common import conv_as_gemm
from repro.sparse.density import FixedStructuredDensity, UniformDensity
from repro.workload.nets import resnet50


def _stc_error():
    """STC validation: structured 2:4 must give exactly 2x (Sec 6.3.5)."""
    ev = Session()
    layer = resnet50()[10]
    gemm = conv_as_gemm(layer)
    wl = Workload(
        gemm,
        {
            "A": FixedStructuredDensity(2, 4),
            "B": UniformDensity(0.65, gemm.tensor_size("B")),
        },
    )
    dense_wl = Workload.uniform(gemm, {"B": 0.65})
    stc_cycles = ev.evaluate(stc.stc_design(), wl).cycles
    dense_cycles = ev.evaluate(dstc.dense_tensor_core_design(), dense_wl).cycles
    speedup = dense_cycles / stc_cycles
    return abs(speedup - 2.0) / 2.0


def _dstc_error():
    """DSTC: normalized latency vs the ideal in the compute-bound
    region (the paper's avg error is 7.6% vs a cycle-level baseline)."""
    ev = Session()
    design = dstc.dstc_design()
    dense_design = dstc.dense_tensor_core_design()
    from repro import matmul

    dense_cycles = ev.evaluate(
        dense_design, Workload.uniform(matmul(1024, 1024, 1024), {})
    ).cycles
    errors = []
    for density in (0.9, 0.7, 0.5):
        wl = Workload.uniform(
            matmul(1024, 1024, 1024), {"A": density, "B": density}
        )
        norm = ev.evaluate(design, wl).cycles / dense_cycles
        ideal = density * density
        errors.append(abs(norm - ideal) / ideal)
    return sum(errors) / len(errors)


def run_table6():
    _rows11, scnn_err = run_fig11()
    rows12, totals12 = run_fig12()
    ev2_err = abs(totals12["uniform"] - totals12["sim"]) / totals12["sim"]
    _rows7, eyeriss_err = run_table7()
    return [
        ["SCNN", "runtime activities", 100 * scnn_err, "<1%"],
        ["Eyeriss V2 PE", "processing latency", 100 * ev2_err, ">98% acc"],
        ["Eyeriss", "compression rate", 100 * eyeriss_err, ">95% acc"],
        ["DSTC", "processing latency", 100 * _dstc_error(), "92.4% acc"],
        ["STC", "processing latency", 100 * _stc_error(), "100% acc"],
    ]


def test_table6_validation_summary(benchmark):
    rows = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    print_table(
        "Table 6: validation summary (average error per design)",
        ["design", "validated output", "avg error %", "paper"],
        rows,
    )
    benchmark.extra_info["rows"] = rows

    errors = {r[0]: r[2] for r in rows}
    # The paper's overall band: 0.1% to 8% average error.
    assert errors["SCNN"] < 1.0
    assert errors["Eyeriss V2 PE"] < 2.0
    assert errors["Eyeriss"] < 5.0
    assert errors["DSTC"] < 8.0
    assert errors["STC"] == 0.0