"""Fig. 13: DSTC processing latency vs operand density, normalized to
dense processing.

The paper models matmuls at operand densities from 10% to 100% and
matches the DSTC cycle-level baseline within 7.6% on average, with
Sparseloop slightly optimistic at low densities (it ignores SMEM bank
conflicts). We reproduce the normalized-latency curve and compare its
shape against the ideal dual-side expectation (d_A * d_B), checking the
low-density latency floor where bandwidth takes over.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _support import print_table

from repro import Session, Workload, matmul
from repro.designs import dstc

DENSITIES = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1]
SHAPE = (1024, 1024, 1024)


def run_fig13():
    ev = Session()
    design = dstc.dstc_design()
    dense_design = dstc.dense_tensor_core_design()
    dense_wl = Workload.uniform(matmul(*SHAPE), {})
    dense_cycles = ev.evaluate(dense_design, dense_wl).cycles
    rows = []
    for density in DENSITIES:
        wl = Workload.uniform(
            matmul(*SHAPE), {"A": density, "B": density}
        )
        result = ev.evaluate(design, wl)
        normalized = result.cycles / dense_cycles
        ideal = density * density
        rows.append(
            [
                density,
                normalized,
                ideal,
                result.latency.bottleneck,
            ]
        )
    return rows


def test_fig13_dstc(benchmark):
    rows = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    print_table(
        "Fig. 13: DSTC latency normalized to dense processing",
        ["density", "normalized latency", "ideal (d^2)", "bottleneck"],
        rows,
    )
    benchmark.extra_info["rows"] = rows

    norm = {r[0]: r[1] for r in rows}
    # Monotone: sparser workloads never run slower.
    ordered = [r[1] for r in rows]
    assert all(a >= b - 1e-9 for a, b in zip(ordered, ordered[1:]))
    # Dense point is exactly 1.0 (same hardware, bitmap overhead aside).
    assert abs(norm[1.0] - 1.0) < 0.1
    # In the compute-bound region the curve tracks d_A*d_B closely
    # (the paper's avg error is 7.6%).
    for r in rows:
        if r[0] >= 0.5:
            assert abs(r[1] - r[2]) / r[2] < 0.15
    # At low density the latency floors above the ideal: bandwidth
    # (the effect the paper attributes to operand streaming).
    low = next(r for r in rows if r[0] == 0.1)
    assert low[1] > low[2]
