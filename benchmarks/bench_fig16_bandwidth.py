"""Fig. 16: SMEM bandwidth required for the ideal speedup at each
structured-sparsity ratio (Sec 7.1.3).

The paper shows why STC-flexible stalls: full tensor-core utilization
always consumes 1x weights per cycle, but uncompressed inputs scale as
the inverse weight density (2x at 2:4, 3x at 2:6, 4x at 2:8), plus
metadata whose size depends on the chosen representation format (RLE
needs fewer bits than CP for 2:6).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _support import print_table

from repro import Session, Workload
from repro.designs import stc
from repro.designs.common import conv_as_gemm
from repro.sparse.density import FixedStructuredDensity, UniformDensity
from repro.workload.nets import resnet50

RATIOS = {"2:4": (2, 4), "2:6": (2, 6), "2:8": (2, 8)}


def _per_cycle_traffic(result, level, tensor):
    """Actual words per *ideal compute* cycle for one tensor at a level."""
    ideal_cycles = result.latency.compute_cycles
    actions = result.sparse.at(level, tensor)
    arch_level = next(
        l for l in result.dense.arch.levels if l.name == level
    )
    meta_scale = arch_level.metadata_word_bits / arch_level.word_bits
    data = actions.data_reads.actual / ideal_cycles
    meta = actions.metadata_reads.actual * meta_scale / ideal_cycles
    return data, meta


def run_fig16():
    ev = Session(check_capacity=False)
    layer = resnet50()[10]
    gemm = conv_as_gemm(layer)
    rows = []
    weights_base = None
    for fmt_name, design_factory in [
        ("CP", lambda n: stc.stc_flexible_design(n)),
        ("RLE", lambda n: stc.stc_flexible_rle_design()),
    ]:
        for ratio_name, (m, n) in RATIOS.items():
            design = design_factory(n)
            # Unthrottle SMEM so demand reflects the ideal speedup.
            for level in design.arch.levels:
                level.read_bandwidth = None
                level.write_bandwidth = None
            wl = Workload(
                gemm,
                {
                    "A": FixedStructuredDensity(m, n),
                    "B": UniformDensity(1.0, gemm.tensor_size("B")),
                },
            )
            result = ev.evaluate(design, wl)
            w_data, w_meta = _per_cycle_traffic(result, "SMEM", "A")
            i_data, _ = _per_cycle_traffic(result, "SMEM", "B")
            if weights_base is None:
                weights_base = i_data / 2  # 2:4 inputs are the 2x ref
            rows.append(
                [
                    fmt_name,
                    ratio_name,
                    w_data,
                    i_data,
                    w_meta,
                ]
            )
    return rows


def test_fig16_bandwidth(benchmark):
    rows = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    print_table(
        "Fig. 16: SMEM words/cycle needed for ideal speedup",
        ["metadata fmt", "ratio", "weights", "inputs", "metadata"],
        rows,
    )
    benchmark.extra_info["rows"] = rows

    cp = {r[1]: r for r in rows if r[0] == "CP"}
    # Weights stay ~1x across ratios (nonzeros per cycle are fixed).
    w = [cp[k][2] for k in RATIOS]
    assert max(w) / min(w) < 1.2
    # Inputs scale as the inverse density: 2x -> 3x -> 4x.
    inputs = [cp[k][3] for k in RATIOS]
    assert abs(inputs[1] / inputs[0] - 1.5) < 0.1   # 3x / 2x
    assert abs(inputs[2] / inputs[0] - 2.0) < 0.1   # 4x / 2x
    # RLE metadata is no larger than CP's for the bigger blocks.
    rle = {r[1]: r for r in rows if r[0] == "RLE"}
    assert rle["2:6"][4] <= cp["2:6"][4] + 1e-9