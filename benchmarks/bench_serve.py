"""Perf + correctness smoke for the evaluation daemon (``repro serve``).

Three phases, each against a real daemon subprocess speaking the
newline-delimited ``schema: 1`` protocol over a unix socket:

* **Identity** — every bundled design family evaluates through the
  daemon and through an in-process :class:`repro.api.Session` with the
  same knobs; the wire results must be *bit-identical* (dict equality
  on the full ``schema: 1`` envelopes, floats included — JSON
  round-trips shortest-repr floats exactly).
* **Concurrent throughput** — 8 client OS processes (both ``fork``
  and ``spawn`` start methods) hammer one daemon; realized jobs/sec
  must clear the committed ``serve_jobs_per_sec_floor``.
* **Cross-client micro-batching** — 8 connections submit interleaved
  DSE traffic against a batching daemon and against the same daemon
  with ``--batch-max 1``; the min-of-rounds speedup must clear the
  committed ``serve_batching_speedup_floor``.

Both floors live in ``baseline_perf_engine.json`` and are deliberately
conservative (see the comment there); the measured numbers are written
to ``BENCH_serve.json`` next to this file.

The timed phases submit with ``fields=["summary"]`` — the scalar
projection a throughput-bound DSE client would use — so the numbers
measure the daemon's hot path, not full-envelope serialization (the
identity phase covers full envelopes). Daemons run ``--cold``: the
persistent tier would otherwise let the second daemon warm-start from
the first one's spilled snapshot and poison the A/B comparison.

Run:  pytest benchmarks/bench_serve.py -q -s
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro import Design, SAFSpec, Workload, matmul
from repro.api import EvaluateJob, Session, connect
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.designs import codesign, dstc, eyeriss, eyeriss_v2, scnn, stc, toy
from repro.designs.common import conv_as_gemm
from repro.mapping.mapspace import Mapper, MapspaceConstraints
from repro.sparse.density import FixedStructuredDensity, UniformDensity
from repro.sparse.formats import CoordinatePayload, FormatRank, FormatSpec
from repro.sparse.saf import SAFKind, double_sided, skip_compute
from repro.workload.nets import alexnet, mobilenet_v1, resnet50

BASELINE_PATH = Path(__file__).parent / "baseline_perf_engine.json"
SUMMARY_PATH = Path(__file__).parent / "BENCH_serve.json"
SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

#: Concurrent client processes / connections in the timed phases.
CLIENTS = 8
#: Jobs per client in the concurrent-throughput phase.
JOBS_PER_CLIENT = 16
#: Jobs per timed round in the batching phase.
BATCH_ROUND_JOBS = 128
#: Timed rounds per daemon config (plus one discarded warmup round);
#: the minimum of each side is compared, which cancels transient
#: machine load the way the cold-search bench does.
BATCH_ROUNDS = 4


def _update_summary(section: dict) -> None:
    data = {"bench": "serve"}
    if SUMMARY_PATH.exists():
        data.update(json.loads(SUMMARY_PATH.read_text()))
    data.update(section)
    SUMMARY_PATH.write_text(json.dumps(data, indent=2) + "\n")


# ----------------------------------------------------------------------
# Daemon management

def _start_daemon(*extra: str):
    """Boot ``repro serve`` on a fresh unix socket; returns (proc, sock)
    once the daemon prints ``ready``."""
    sock = tempfile.mktemp(prefix="repro-bench-serve-", suffix=".sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_ROOT)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--unix", sock,
         "--no-capacity-check", "--cold", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    banner: list[str] = []
    for line in proc.stdout:
        banner.append(line)
        if line.strip() == "ready":
            return proc, sock
    raise RuntimeError(
        f"daemon exited (code {proc.wait()}) before 'ready':\n"
        + "".join(banner)
    )


def _stop_daemon(proc) -> None:
    proc.terminate()
    proc.wait(timeout=30)


# ----------------------------------------------------------------------
# Identity: every bundled design family, daemon vs in-process

def _tc_workload(weight_model):
    gemm = conv_as_gemm(resnet50()[10])
    return Workload(
        gemm,
        {"A": weight_model, "B": UniformDensity(0.65, gemm.tensor_size("B"))},
    )


def _identity_cases():
    """One (name, design, workload) per bundled design family — the
    same pairings the sparse-equivalence suite exercises."""
    mm = Workload.uniform(matmul(64, 64, 64), {"A": 0.2, "B": 0.2})
    conv = Workload.uniform(alexnet()[2].spec, {"I": 0.5})
    mobile = mobilenet_v1()[3]
    dataflow, saf = codesign.ALL_COMBINATIONS[0]
    return [
        ("toy-bitmask", toy.bitmask_design(), mm),
        ("toy-coordinate-list", toy.coordinate_list_design(), mm),
        ("eyeriss", eyeriss.eyeriss_design(), conv),
        (
            "eyeriss-v2-pe",
            eyeriss_v2.eyeriss_v2_pe_design(),
            Workload.uniform(mobile.spec, {"I": 0.55, "W": 0.4}),
        ),
        ("scnn", scnn.scnn_design(), Workload.uniform(
            alexnet()[2].spec, {"I": 0.4, "W": 0.3}
        )),
        ("dstc", dstc.dstc_design(), _tc_workload(UniformDensity(0.4, 1024))),
        ("stc", stc.stc_design(), _tc_workload(FixedStructuredDensity(2, 4))),
        (
            f"codesign-{dataflow}-{saf}",
            codesign.build_design(dataflow, saf),
            Workload.uniform(matmul(256, 256, 256), {"A": 0.06, "B": 0.06}),
        ),
    ]


@pytest.mark.perf
def test_serve_identity_vs_in_process():
    cases = _identity_cases()
    proc, sock = _start_daemon()
    try:
        with connect(sock) as remote:
            remote_handles = [
                (name, remote.submit(EvaluateJob(design, workload)))
                for name, design, workload in cases
            ]
            remote_dicts = {
                name: handle.result(timeout=300).to_dict()
                for name, handle in remote_handles
            }
    finally:
        _stop_daemon(proc)

    with Session(check_capacity=False) as local:
        local_handles = [
            (name, local.submit(EvaluateJob(design, workload)))
            for name, design, workload in cases
        ]
        for name, handle in local_handles:
            assert remote_dicts[name] == handle.result().to_dict(), (
                f"daemon result for {name} diverged from the in-process "
                "Session"
            )

    _update_summary({
        "identity_designs": [name for name, _, _ in cases],
        "identity_bit_identical": True,
    })
    print(f"\n=== serve identity ===\n{len(cases)} bundled designs "
          "bit-identical (daemon vs in-process Session)")


# ----------------------------------------------------------------------
# Shared DSE scenario for the timed phases

def _dse_scenario():
    """The DSE traffic pattern: one small sparse accelerator, one
    matmul workload, a deterministic sampled mapping stream."""
    arch = Architecture(
        "serve-dse",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Buffer", 16 * 1024, component="sram",
                         read_bandwidth=8, write_bandwidth=8),
        ],
        ComputeLevel("MAC", instances=16),
    )
    workload = Workload.uniform(matmul(128, 128, 128), {"A": 0.2, "B": 0.2})
    cp2 = FormatSpec(
        [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
    )
    safs = SAFSpec(
        formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
        storage_safs=double_sided(SAFKind.SKIP, "A", "B", "Buffer"),
        compute_safs=[skip_compute()],
    )
    constraints = MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]})
    design = Design("serve-dse", arch, safs, constraints=constraints)
    mapper = Mapper(workload.einsum, arch, constraints)
    return design, workload, mapper


def _sampled_mappings(mapper, count: int):
    mappings = list(mapper.sample_mappings(count * 3, seed=9))[:count]
    assert len(mappings) == count, "mapspace too small for the bench"
    return mappings


# ----------------------------------------------------------------------
# Concurrent throughput: 8 client processes, fork and spawn

def _throughput_client(sock, index, barrier, out):
    """One client OS process: connect, wait for the gun, submit its
    slice, drain. Module-level so the spawn start method can import it."""
    design, workload, mapper = _dse_scenario()
    mappings = _sampled_mappings(mapper, CLIENTS * JOBS_PER_CLIENT)
    jobs = [
        EvaluateJob(design, workload, mapping)
        for mapping in mappings[
            index * JOBS_PER_CLIENT:(index + 1) * JOBS_PER_CLIENT
        ]
    ]
    with connect(sock) as session:
        barrier.wait()
        handles = session.submit_many(jobs, fields=["summary"])
        for handle in handles:
            summary = handle.result(timeout=300)
            assert summary["summary"]["cycles"] > 0
        out.put(session.stats(timeout=60))


def _run_concurrent(method: str) -> dict:
    proc, sock = _start_daemon()
    try:
        # One warm evaluation so client timing measures the daemon's
        # steady state, not its very first numpy dispatch.
        design, workload, mapper = _dse_scenario()
        with connect(sock) as session:
            session.evaluate(design, workload, next(iter(
                _sampled_mappings(mapper, 1)
            )))
        ctx = multiprocessing.get_context(method)
        barrier = ctx.Barrier(CLIENTS + 1)
        out = ctx.Queue()
        clients = [
            ctx.Process(
                target=_throughput_client, args=(sock, i, barrier, out)
            )
            for i in range(CLIENTS)
        ]
        for client in clients:
            client.start()
        barrier.wait()
        t0 = time.perf_counter()
        stats = [out.get(timeout=300) for _ in clients]
        seconds = time.perf_counter() - t0
        for client in clients:
            client.join(timeout=60)
        with connect(sock) as session:
            server = session.server_stats(timeout=60)
        jobs = CLIENTS * JOBS_PER_CLIENT
        assert sum(s["jobs"] for s in stats) >= jobs
        return {
            "jobs": jobs,
            "seconds": round(seconds, 4),
            "jobs_per_sec": round(jobs / seconds, 1),
            "batch_mean": round(server["evaluate_batch_mean"], 1),
            "batch_max": server["evaluate_batch_max"],
        }
    finally:
        _stop_daemon(proc)


@pytest.mark.perf
def test_serve_concurrent_clients_floor():
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["serve_jobs_per_sec_floor"]
    results = {}
    for method in ("fork", "spawn"):
        # Timing smoke on shared runners: allow one re-measure before
        # declaring the floor breached.
        for attempts_left in (1, 0):
            measured = _run_concurrent(method)
            if measured["jobs_per_sec"] >= floor or not attempts_left:
                break
        results[method] = measured

    worst = min(r["jobs_per_sec"] for r in results.values())
    _update_summary({
        "concurrent_clients": CLIENTS,
        "concurrent_fork": results["fork"],
        "concurrent_spawn": results["spawn"],
        "serve_jobs_per_sec": worst,
        "serve_jobs_per_sec_floor": floor,
    })
    print(f"\n=== serve concurrent ===\n{json.dumps(results, indent=2)}")

    for method, measured in results.items():
        assert measured["jobs_per_sec"] >= floor, (
            f"{CLIENTS} concurrent {method}-clients sustained only "
            f"{measured['jobs_per_sec']:.1f} jobs/s; the committed floor "
            f"is {floor}/s"
        )


# ----------------------------------------------------------------------
# Cross-client micro-batching speedup

def _run_batching_config(extra: list[str], mappings) -> tuple[list, dict]:
    """One daemon boot, CLIENTS connections, a discarded warmup round
    plus BATCH_ROUNDS timed rounds over *distinct* mapping slices (the
    same slices for every config, so neither side gets cache hits the
    other does not)."""
    design, workload, _mapper = _dse_scenario()
    proc, sock = _start_daemon(*extra)
    times = []
    try:
        sessions = [connect(sock) for _ in range(CLIENTS)]
        try:
            rounds = [
                mappings[r * BATCH_ROUND_JOBS:(r + 1) * BATCH_ROUND_JOBS]
                for r in range(BATCH_ROUNDS + 1)
            ]
            for number, chunk in enumerate(rounds):
                jobs_per_client = [
                    [EvaluateJob(design, workload, m)
                     for m in chunk[i::CLIENTS]]
                    for i in range(CLIENTS)
                ]
                t0 = time.perf_counter()
                handles = []
                for session, jobs in zip(sessions, jobs_per_client):
                    handles += session.submit_many(jobs, fields=["summary"])
                for handle in handles:
                    handle.result(timeout=300)
                if number > 0:  # round 0 is the discarded warmup
                    times.append(time.perf_counter() - t0)
            stats = sessions[0].server_stats(timeout=60)
        finally:
            for session in sessions:
                session.close()
    finally:
        _stop_daemon(proc)
    return times, stats


@pytest.mark.perf
def test_serve_batching_speedup_floor():
    _design, _workload, mapper = _dse_scenario()
    mappings = _sampled_mappings(
        mapper, BATCH_ROUND_JOBS * (BATCH_ROUNDS + 1)
    )
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["serve_batching_speedup_floor"]

    # Timing-ratio smoke on shared runners: allow one re-measure
    # before declaring the floor breached.
    for attempts_left in (1, 0):
        batched_times, batched_stats = _run_batching_config([], mappings)
        serial_times, _ = _run_batching_config(
            ["--batch-max", "1"], mappings
        )
        batched, serial = min(batched_times), min(serial_times)
        if serial / batched >= floor or not attempts_left:
            break

    speedup = serial / batched
    summary = {
        "batching_round_jobs": BATCH_ROUND_JOBS,
        "batching_batched_seconds": round(batched, 4),
        "batching_batch1_seconds": round(serial, 4),
        "batching_batched_jobs_per_sec": round(BATCH_ROUND_JOBS / batched, 1),
        "batching_batch1_jobs_per_sec": round(BATCH_ROUND_JOBS / serial, 1),
        "batching_realized_batch_mean": round(
            batched_stats["evaluate_batch_mean"], 1
        ),
        "batching_realized_batch_max": batched_stats["evaluate_batch_max"],
        "serve_batching_speedup": round(speedup, 2),
        "serve_batching_speedup_floor": floor,
    }
    _update_summary(summary)
    print(f"\n=== serve batching ===\n{json.dumps(summary, indent=2)}")

    # The collector must actually be forming cross-client batches —
    # a speedup from anything else would not be micro-batching.
    assert batched_stats["evaluate_batch_mean"] > 4, batched_stats

    assert speedup >= floor, (
        f"cross-client micro-batching sped the DSE round up only "
        f"{speedup:.2f}x over --batch-max 1 (batched {batched:.3f}s, "
        f"batch1 {serial:.3f}s); the committed floor is {floor}x"
    )
