"""Table 7: Eyeriss DRAM compression rates for AlexNet conv1-5.

The paper reports RLE compression rates of 1.2 / 1.4 / 1.7 / 1.8-1.9 /
1.9 for the five AlexNet conv layers (activations), validated against
the taped-out chip with ~1% average error. We reproduce the modeled
rates using the per-layer activation densities of the Eyeriss paper's
workload regime.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _support import ALEXNET_ACT_DENSITY, geomean_error, print_table

from repro import Session, Workload
from repro.designs import eyeriss
from repro.workload.nets import alexnet

PAPER_RATES = {
    "conv1": 1.2,
    "conv2": 1.4,
    "conv3": 1.7,
    "conv4": 1.9,
    "conv5": 1.9,
}


def run_table7():
    ev = Session()
    design = eyeriss.eyeriss_design()
    rows = []
    pairs = []
    for layer in alexnet()[:5]:
        density = ALEXNET_ACT_DENSITY[layer.name]
        wl = Workload.uniform(
            layer.spec, {"I": density}, name=layer.name
        )
        result = ev.evaluate(design, wl)
        modeled = result.compression_rate("DRAM", "I")
        paper = PAPER_RATES[layer.name]
        rows.append([layer.name, density, paper, modeled])
        pairs.append((paper, modeled))
    return rows, geomean_error(pairs)


def test_table7_eyeriss_compression(benchmark):
    rows, avg_error = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    print_table(
        "Table 7: Eyeriss DRAM compression rate (AlexNet activations)",
        ["layer", "act density", "paper", "modeled"],
        rows,
    )
    print(f"average deviation from paper: {100 * avg_error:.1f}%")
    benchmark.extra_info["rows"] = rows

    # Rates increase monotonically as activations sparsify (the
    # paper's trend) ...
    modeled = [r[3] for r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(modeled, modeled[1:]))
    # ... and track the silicon-validated numbers.
    assert avg_error < 0.12
    for row in rows:
        assert abs(row[3] - row[2]) / row[2] < 0.2
