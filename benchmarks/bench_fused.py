"""Fused multi-einsum evaluation: oracle + committed traffic floor.

Two phases:

* **Oracle** — the degenerate :class:`FusedMapping` (no sub-nests, no
  fusion level) must reproduce ``evaluate_network``'s per-layer results
  *bit-identically* across every bundled design family. This is the
  refactor's safety contract: the fused path with nothing fused IS the
  unfused path, so the einsum-graph layer provably did not change
  single-einsum semantics.
* **Traffic floor** — the bundled attention graph (``qk`` -> softmax ->
  ``av`` with the ``S`` score matrix as the shared intermediate) is
  evaluated unfused and fused at the on-chip buffer. Fusion keeps
  ``S`` resident at the fusion level, eliminating its backing-store
  round trip; the measured intermediate-DRAM-traffic reduction must
  clear the committed ``fused_intermediate_traffic_reduction_floor``.

The floor lives in ``baseline_perf_engine.json`` (see the comment
there); measured numbers are written to ``BENCH_fused.json`` next to
this file.

Run:  pytest benchmarks/bench_fused.py -q -s
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.api import FusedMapping, Session
from repro.designs import codesign, dstc, eyeriss, eyeriss_v2, scnn, stc, toy
from repro.designs.common import generic_einsum_mapping
from repro.workload.nets import NetLayer, attention
from repro.workload.einsum import (
    EinsumSpec,
    ProjectionTerm,
    RankProjection,
    TensorRef,
)
from repro.workload.graph import EinsumGraph

BASELINE_PATH = Path(__file__).parent / "baseline_perf_engine.json"
SUMMARY_PATH = Path(__file__).parent / "BENCH_fused.json"

#: Attention scenario for the traffic phase: big enough that the score
#: matrix S (heads x seq x seq = 512K words) dominates intermediate
#: traffic, small enough to evaluate in well under a second.
ATTENTION = dict(seq=256, d_model=512, heads=8)

DENSITIES = {"A": 0.5, "B": 0.6, "H": 0.7, "C": 0.4}


def _floor() -> float:
    baseline = json.loads(BASELINE_PATH.read_text())
    return float(baseline["fused_intermediate_traffic_reduction_floor"])


def _update_summary(section: dict) -> None:
    data = {"bench": "fused"}
    if SUMMARY_PATH.exists():
        data.update(json.loads(SUMMARY_PATH.read_text()))
    data.update(section)
    SUMMARY_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _rank(name, dim):
    return RankProjection(name, (ProjectionTerm(dim),))


def _chain_graph() -> EinsumGraph:
    """Two chained matmuls sharing H: the oracle's minimal cascade."""

    def mm(name, out, in_a, in_b, m, k, n):
        a = TensorRef(in_a, (_rank("M", "m"), _rank("K", "k")))
        b = TensorRef(in_b, (_rank("K", "k"), _rank("N", "n")))
        z = TensorRef(out, (_rank("M", "m"), _rank("N", "n")), is_output=True)
        return EinsumSpec(name, {"m": m, "k": k, "n": n}, [a, b, z])

    return EinsumGraph(
        "chain",
        [mm("fc1", "H", "A", "B", 64, 32, 128), mm("fc2", "O", "H", "C", 64, 128, 48)],
    )


def _bundled_designs():
    """The eight bundled design families, re-pointed at the
    shape-agnostic mapping policy (identically on both compared
    paths)."""
    designs = [
        ("toy-bitmask", toy.bitmask_design()),
        ("toy-coordinate-list", toy.coordinate_list_design()),
        ("eyeriss", eyeriss.eyeriss_design()),
        ("eyeriss-v2-pe", eyeriss_v2.eyeriss_v2_pe_design()),
        ("scnn", scnn.scnn_design()),
        ("dstc", dstc.dstc_design()),
        ("stc", stc.stc_design()),
        ("codesign", codesign.build_design(*codesign.ALL_COMBINATIONS[0])),
    ]
    return [
        (
            name,
            replace(
                design,
                mapping=None,
                constraints=None,
                mapping_factory=generic_einsum_mapping,
            ),
        )
        for name, design in designs
    ]


# ----------------------------------------------------------------------
# Phase 1: degenerate-fusion oracle across every bundled design family

@pytest.mark.perf
def test_degenerate_oracle_across_bundled_designs():
    graph = _chain_graph()
    layers = [NetLayer(spec.name, spec) for spec in graph.einsums]

    def densities_for(layer):
        names = {ref.name for ref in layer.spec.tensors}
        return {t: d for t, d in DENSITIES.items() if t in names}

    checked = []
    for name, design in _bundled_designs():
        with Session(check_capacity=False) as session:
            fused = session.evaluate_fused(design, graph, dict(DENSITIES))
            network = session.evaluate_network(design, layers, densities_for)
        for fused_entry, layer in zip(fused.einsums, network.layers):
            assert (
                fused_entry.result.to_dict() == layer.result.to_dict()
            ), f"{name}: einsum {fused_entry.einsum_name} diverged"
        checked.append(name)

    _update_summary(
        {
            "oracle_designs_checked": checked,
            "oracle_bit_identical": True,
        }
    )
    print(
        f"\n=== degenerate oracle ===\n{len(checked)} bundled design "
        "families bit-identical (fused degenerate vs evaluate_network)"
    )


# ----------------------------------------------------------------------
# Phase 2: fused attention vs unfused, committed traffic floor

@pytest.mark.perf
def test_fused_attention_clears_traffic_floor():
    graph = attention(**ATTENTION)
    design = replace(
        toy.dense_design(),
        mapping=None,
        constraints=None,
        mapping_factory=generic_einsum_mapping,
    )

    with Session(check_capacity=False) as session:
        unfused = session.evaluate_fused(design, graph)
        fused = session.evaluate_fused(
            design, graph, fused=FusedMapping(fuse_at="Buffer")
        )

    unfused_words = unfused.intermediate_backing_words
    fused_words = fused.intermediate_backing_words
    # S never leaves the fusion buffer, so the fused backing traffic is
    # exactly zero; guard the ratio against that.
    reduction = unfused_words / max(1.0, fused_words)
    floor = _floor()

    s_words = ATTENTION["heads"] * ATTENTION["seq"] ** 2
    record = fused.shared_tensor("S")

    _update_summary(
        {
            "attention": ATTENTION,
            "attention_s_words": s_words,
            "unfused_intermediate_backing_words": unfused_words,
            "fused_intermediate_backing_words": fused_words,
            "intermediate_traffic_reduction": reduction,
            "intermediate_traffic_reduction_floor": floor,
            "fused_total_cycles": fused.total_cycles,
            "unfused_total_cycles": unfused.total_cycles,
        }
    )
    print(
        f"\n=== fused attention ===\n"
        f"S ({s_words} words): unfused backing {unfused_words:.4g} words, "
        f"fused {fused_words:.4g} words -> reduction {reduction:.3g}x "
        f"(floor {floor}x)"
    )

    # Unfused, S makes at least one full write + read round trip.
    assert unfused_words >= 2 * s_words
    assert record["producer"] == "qk" and record["consumers"] == ["av"]
    assert sum(record["fusion_words"].values()) > 0
    assert reduction >= floor, (
        f"fused attention intermediate-traffic reduction {reduction:.3g}x "
        f"fell below the committed floor {floor}x"
    )
