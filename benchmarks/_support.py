"""Shared helpers for the reproduction benchmarks.

Every ``bench_*.py`` file regenerates one table or figure from the
paper's evaluation. The benches print the same rows/series the paper
reports (run pytest with ``-s`` to see them) and attach the data to
``benchmark.extra_info`` for programmatic access.
"""

from __future__ import annotations

import sys

from repro.common.util import divisors
from repro.workload.einsum import EinsumSpec

#: Nominal host frequency used to convert wall time to host cycles for
#: the CPHC metric (Sec 6.2).
HOST_HZ = 2.5e9

#: Per-layer average activation densities (post-ReLU), set to the
#: regimes the Eyeriss paper reports for AlexNet. Weight tensors are
#: dense unless a bench prunes them.
ALEXNET_ACT_DENSITY = {
    "conv1": 0.66,
    "conv2": 0.55,
    "conv3": 0.47,
    "conv4": 0.42,
    "conv5": 0.42,
    "fc6": 0.30,
    "fc7": 0.25,
    "fc8": 0.30,
}

DEFAULT_ACT_DENSITY = 0.55
DEFAULT_WEIGHT_DENSITY = 0.40


def act_density(layer_name: str) -> float:
    return ALEXNET_ACT_DENSITY.get(layer_name, DEFAULT_ACT_DENSITY)


def dnn_densities(layer) -> dict[str, float]:
    """Representative density assignment for a conv/fc layer."""
    spec = layer.spec
    tensors = {t.name for t in spec.tensors}
    densities = {}
    if "I" in tensors:
        densities["I"] = act_density(layer.name)
    if "W" in tensors:
        densities["W"] = DEFAULT_WEIGHT_DENSITY
    if "A" in tensors:  # matmul-form fc layers
        densities["A"] = act_density(layer.name)
        densities["B"] = DEFAULT_WEIGHT_DENSITY
    return densities


def shrink_dims(spec: EinsumSpec, caps: dict[str, int]) -> EinsumSpec:
    """Downscale an Einsum for cycle-level simulation.

    Each dimension is clamped to the largest divisor of its bound not
    exceeding the cap, so mappings still factor exactly.
    """
    new_dims = {}
    for dim, bound in spec.dims.items():
        cap = caps.get(dim, bound)
        best = 1
        for d in divisors(bound):
            if d <= cap:
                best = d
        new_dims[dim] = best
    return EinsumSpec(f"{spec.name}_small", new_dims, list(spec.tensors))


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render one reproduced table to stdout."""
    out = sys.stdout
    out.write(f"\n=== {title} ===\n")
    widths = [
        max(len(str(header[i])), *(len(_fmt(r[i])) for r in rows))
        for i in range(len(header))
    ]
    out.write(
        "  ".join(str(h).ljust(w) for h, w in zip(header, widths)) + "\n"
    )
    for row in rows:
        out.write(
            "  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)) + "\n"
        )
    out.flush()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def geomean_error(pairs: list[tuple[float, float]]) -> float:
    """Mean absolute relative error of (reference, measured) pairs."""
    errs = [
        abs(m - r) / r for r, m in pairs if r
    ]
    return sum(errs) / len(errs) if errs else 0.0
