"""Pareto/evolutionary search quality smoke with committed floors.

Two commitments on the DSE traffic pattern (the three SAF variants of
``bench_perf_engine._dse_designs``):

* **Scalar parity** — at an equal candidate budget, the evolutionary
  strategy's best EDP must match or beat batched random sampling's on
  *every* design. Breeding recycles pruned proposals and exploits the
  factorization structure, so losing to blind random draws means the
  strategy regressed.
* **Frontier size** — a three-axis search (energy, cycles, slack)
  must keep at least ``pareto_frontier_min_points`` mutually
  non-dominated points per design (committed conservatively below the
  11-14 the reference measurement finds). A collapsing frontier means
  dominance bookkeeping or the objective axes broke.

Both runs are deterministic (fixed search seed), so the quality
assertions are exact, not statistical; the measured numbers are
written to ``BENCH_search_pareto.json`` for the perf CI artifact.

Run:  pytest benchmarks/bench_search_pareto.py -q -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.model.engine import Evaluator
from repro.search.frontier import dominates

from bench_perf_engine import SEARCH_BUDGET, _dse_designs

BASELINE_PATH = Path(__file__).parent / "baseline_perf_engine.json"
SUMMARY_PATH = Path(__file__).parent / "BENCH_search_pareto.json"

MULTI_OBJECTIVE = ("energy", "cycles", "slack")


def _best_scalar(design, workload, strategy) -> float:
    evaluator = Evaluator(search_budget=SEARCH_BUDGET)
    outcome = evaluator._search_full(
        design, workload, objective="edp", strategy=strategy
    )
    assert outcome.best_score is not None
    return outcome.best_score


@pytest.mark.perf
def test_search_pareto_smoke():
    designs, workload = _dse_designs()
    baseline = json.loads(BASELINE_PATH.read_text())
    frontier_floor = baseline["pareto_frontier_min_points"]

    summary: dict = {
        "budget": SEARCH_BUDGET,
        "multi_objective": list(MULTI_OBJECTIVE),
        "designs": [],
    }

    t0 = time.perf_counter()
    for design in designs:
        batched_best = _best_scalar(design, workload, "batched")
        evolved_best = _best_scalar(design, workload, "evolutionary")
        assert evolved_best <= batched_best, (
            f"{design.name}: evolutionary best EDP {evolved_best:.6g} "
            f"lost to batched random sampling's {batched_best:.6g} at "
            f"equal budget {SEARCH_BUDGET}"
        )

        outcome = Evaluator(search_budget=SEARCH_BUDGET)._search_full(
            design, workload,
            objective=MULTI_OBJECTIVE, strategy="batched",
        )
        points = outcome.frontier.ordered()
        for a in points:
            for b in points:
                assert not dominates(a.objectives, b.objectives), (
                    f"{design.name}: frontier holds a dominated point"
                )
        assert any(p.index == outcome.best_index for p in points), (
            f"{design.name}: scalar winner is not on the frontier"
        )
        assert len(points) >= frontier_floor, (
            f"{design.name}: frontier collapsed to {len(points)} points "
            f"(committed floor {frontier_floor})"
        )

        summary["designs"].append(
            {
                "design": design.name,
                "batched_best_edp": batched_best,
                "evolutionary_best_edp": evolved_best,
                "improvement": batched_best / evolved_best,
                "frontier_points": len(points),
            }
        )

    summary["seconds"] = round(time.perf_counter() - t0, 3)
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\n[bench_search_pareto] {json.dumps(summary, indent=2)}")
